"""Unit tests for per-request span records (repro.obs.requests)."""

import pytest

from repro.obs.causality import (CausalityRecorder, GEMM_COMPUTE,
                                 LINK_SERIALIZATION, QUEUEING_WAIT,
                                 RETRANSMIT)
from repro.obs.requests import (GROUPS, PHASE_DECODE, PHASE_KINDS,
                                PHASE_PREFILL, PHASE_QUEUE, NullRequestLog,
                                RequestLog, RequestRecord, category_shares)


# ---------------------------------------------------------------------------
# Phase tiling
# ---------------------------------------------------------------------------

def test_phases_tile_arrival_to_finish():
    rec = RequestRecord(rid=1, arrival_ns=100.0, prompt_len=16, output_len=2)
    # A gap between arrival (100) and the first iteration (150) becomes an
    # implicit queue phase.
    rec.phase(PHASE_PREFILL, 150.0, 200.0, tokens=1)
    rec.phase(PHASE_DECODE, 200.0, 260.0, tokens=1)
    rec.close(260.0, first_token_ns=200.0)
    assert [p.kind for p in rec.phases] == [PHASE_QUEUE, PHASE_PREFILL,
                                            PHASE_DECODE]
    assert rec.e2e_ns == 160.0
    assert sum(p.duration_ns for p in rec.phases) == pytest.approx(rec.e2e_ns)
    assert rec.phase_total_ns(PHASE_QUEUE) == 50.0
    assert rec.phase_total_ns(PHASE_PREFILL) == 50.0
    assert rec.phase_total_ns(PHASE_DECODE) == 60.0


def test_gap_between_iterations_becomes_queue_phase():
    rec = RequestRecord(rid=2, arrival_ns=0.0, prompt_len=8, output_len=2)
    rec.phase(PHASE_PREFILL, 0.0, 10.0, tokens=1)
    # Evicted, re-admitted 30ns later.
    rec.event("evicted", 10.0)
    rec.phase(PHASE_PREFILL, 40.0, 55.0, tokens=1)
    rec.close(55.0, first_token_ns=55.0)
    kinds = [p.kind for p in rec.phases]
    assert kinds == [PHASE_PREFILL, PHASE_QUEUE, PHASE_PREFILL]
    assert rec.phases[1].duration_ns == 30.0
    assert rec.phases[1].categories == {"queue": 30.0}
    assert rec.evictions == 1
    assert rec.events == [("evicted", 10.0)]


def test_phase_before_cursor_raises():
    rec = RequestRecord(rid=3, arrival_ns=0.0, prompt_len=8, output_len=1)
    rec.phase(PHASE_PREFILL, 0.0, 20.0)
    with pytest.raises(ValueError, match="before the recorded timeline"):
        rec.phase(PHASE_DECODE, 10.0, 30.0)


def test_phase_end_before_start_raises():
    rec = RequestRecord(rid=4, arrival_ns=0.0, prompt_len=8, output_len=1)
    with pytest.raises(ValueError, match="before it starts"):
        rec.phase(PHASE_PREFILL, 10.0, 5.0)


def test_close_mismatch_raises_but_eps_slack_is_clamped():
    rec = RequestRecord(rid=5, arrival_ns=0.0, prompt_len=8, output_len=1)
    rec.phase(PHASE_PREFILL, 0.0, 100.0)
    with pytest.raises(ValueError, match="phases end at"):
        rec.close(150.0, first_token_ns=None)
    # Sub-epsilon float drift from schedule_at round-trips is tolerated.
    rec2 = RequestRecord(rid=6, arrival_ns=0.0, prompt_len=8, output_len=1)
    rec2.phase(PHASE_PREFILL, 0.0, 100.0)
    rec2.phase(PHASE_DECODE, 100.0 - 5e-4, 120.0)
    rec2.close(120.0, first_token_ns=120.0)
    assert rec2.phases[-1].start_ns == 100.0  # clamped, no overlap


def test_to_dict_is_json_shaped_and_sorted():
    rec = RequestRecord(rid=7, arrival_ns=0.0, prompt_len=4, output_len=1)
    rec.phase(PHASE_PREFILL, 0.0, 10.0, tokens=1,
              categories={"comm": 4.0, "compute": 6.0})
    rec.close(10.0, first_token_ns=10.0)
    d = rec.to_dict()
    assert d["rid"] == 7
    assert list(d["phases"][0]["categories"]) == ["comm", "compute"]
    assert d["phases"][0]["tokens"] == 1


# ---------------------------------------------------------------------------
# category_shares
# ---------------------------------------------------------------------------

def _recorder_with(nodes):
    cz = CausalityRecorder()
    for cat, start, end in nodes:
        cz.node(cat, start, end, f"{cat} node")
    return cz


def test_category_shares_is_exact_partition():
    cz = _recorder_with([
        (GEMM_COMPUTE, 0.0, 60.0),        # compute: 60 busy
        (LINK_SERIALIZATION, 0.0, 30.0),  # comm: 30 busy
        (QUEUEING_WAIT, 50.0, 60.0),      # queue: 10 busy
    ])
    shares = category_shares(cz, 0, 0.0, 100.0)
    assert sum(shares.values()) == pytest.approx(100.0)
    # Proportional to busy time: 60/100, 30/100, 10/100 of the wall 100.
    assert shares["compute"] == pytest.approx(60.0)
    assert shares["comm"] == pytest.approx(30.0)
    assert shares["queue"] == pytest.approx(10.0)
    assert set(shares) <= set(GROUPS)


def test_category_shares_clips_nodes_to_interval():
    cz = _recorder_with([
        (GEMM_COMPUTE, -50.0, 50.0),   # only [0, 50] overlaps
        (RETRANSMIT, 50.0, 150.0),     # only [50, 100] overlaps
    ])
    shares = category_shares(cz, 0, 0.0, 100.0)
    assert shares["compute"] == pytest.approx(50.0)
    assert shares["fault"] == pytest.approx(50.0)


def test_category_shares_respects_start_index():
    cz = _recorder_with([(GEMM_COMPUTE, 0.0, 100.0)])
    mark = len(cz)
    cz.node(LINK_SERIALIZATION, 0.0, 100.0, "later comm")
    shares = category_shares(cz, mark, 0.0, 100.0)
    # Only the node recorded after the mark participates.
    assert shares == {"comm": pytest.approx(100.0)}


def test_category_shares_no_work_falls_back_to_queue():
    cz = CausalityRecorder()
    assert category_shares(cz, 0, 0.0, 40.0) == {"queue": 40.0}


def test_category_shares_empty_interval_is_empty():
    cz = _recorder_with([(GEMM_COMPUTE, 0.0, 10.0)])
    assert category_shares(cz, 0, 5.0, 5.0) == {}


# ---------------------------------------------------------------------------
# RequestLog
# ---------------------------------------------------------------------------

def test_request_log_open_get_and_sorted_records():
    log = RequestLog()
    log.open(3, 30.0, 8, 1)
    log.open(1, 10.0, 8, 1)
    assert log.get(3).arrival_ns == 30.0
    assert [r.rid for r in log.records()] == [1, 3]
    with pytest.raises(ValueError, match="already has an open record"):
        log.open(1, 99.0, 8, 1)


def test_request_log_snapshot_roundtrips_through_to_dict():
    log = RequestLog()
    rec = log.open(0, 0.0, 4, 1)
    rec.phase(PHASE_PREFILL, 0.0, 10.0, tokens=1)
    rec.close(10.0, first_token_ns=10.0)
    snap = log.snapshot()
    assert len(snap) == 1
    assert snap[0] == rec.to_dict()


def test_null_request_log_is_one_shared_record():
    log = NullRequestLog()
    assert log.enabled is False
    rec = log.open(1, 0.0, 8, 1)
    assert rec is log.get(999)
    rec.phase(PHASE_PREFILL, 0.0, 10.0)
    rec.event("evicted", 5.0)
    rec.close(10.0)
    assert rec.phases == [] and rec.events == [] and rec.evictions == 0
    assert log.records() == []


def test_phase_kind_constants_cover_report_order():
    assert PHASE_KINDS == (PHASE_QUEUE, PHASE_PREFILL, PHASE_DECODE)
    assert GROUPS == ("compute", "comm", "queue", "fault")
