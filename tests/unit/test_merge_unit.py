"""Unit tests for the CAIS merge unit state machine."""

import pytest

from repro.common.config import dgx_h100_config
from repro.common.events import Simulator
from repro.interconnect.message import Address, Message, Op, gpu_node
from repro.interconnect.network import Network
from repro.cais.merge_unit import MergeUnit, entries_for
from repro.metrics.merge_stats import MergeStats


class Fabric:
    """Fabric with merge units and scripted GPU memory endpoints."""

    def __init__(self, num_gpus=4, capacity=320, timeout_ns=None,
                 emit_credits=False):
        self.sim = Simulator()
        cfg = dgx_h100_config(num_gpus=num_gpus)
        cfg = cfg.__class__(**{**cfg.__dict__, "num_gpus": num_gpus,
                               "num_switches": 1})
        self.net = Network(self.sim, cfg)
        self.stats = MergeStats()
        self.units = []
        for sw in self.net.switches:
            unit = MergeUnit(self.stats, num_gpus,
                             capacity_entries=capacity,
                             timeout_ns=timeout_ns,
                             emit_credits=emit_credits)
            sw.attach_engine(unit)
            self.units.append(unit)
        self.unit = self.units[0]
        # Scripted memory: local value = gpu index + 1 for loads; stores
        # accumulate per address.
        self.local = {g: float(g + 1) for g in range(num_gpus)}
        self.stores = {g: [] for g in range(num_gpus)}
        self.load_responses = {g: [] for g in range(num_gpus)}
        self.credits = {g: [] for g in range(num_gpus)}
        for g in range(num_gpus):
            self.net.register_gpu(g, self._make_receiver(g))

    def _make_receiver(self, g):
        def receive(msg):
            if msg.op is Op.LOAD_REQ and msg.meta.get("merge_fill"):
                resp = Message(op=Op.LD_CAIS_RESP, src=gpu_node(g),
                               dst=gpu_node(g), address=msg.address,
                               payload_bytes=msg.meta["chunk_bytes"],
                               payload=self.local[g],
                               meta={"merge_fill": True})
                self.net.send_from_gpu(g, resp)
            elif msg.op is Op.LOAD_REQ and msg.meta.get("direct"):
                resp = Message(op=Op.LOAD_RESP, src=gpu_node(g),
                               dst=gpu_node(msg.meta["requester"]),
                               address=msg.address,
                               payload_bytes=msg.meta["chunk_bytes"],
                               payload=self.local[g], meta={"direct": True})
                self.net.send_from_gpu(g, resp)
            elif msg.op in (Op.LD_CAIS_RESP, Op.LOAD_RESP):
                self.load_responses[g].append(msg)
            elif msg.op is Op.STORE:
                self.stores[g].append(msg)
            elif msg.op is Op.CREDIT:
                self.credits[g].append(msg)
        return receive

    def load(self, requester, addr, chunk=1024, expected=None, delay=0.0):
        expected = expected if expected is not None else 3
        msg = Message(Op.LD_CAIS_REQ, gpu_node(requester),
                      gpu_node(addr.home_gpu), address=addr,
                      meta={"chunk_bytes": chunk, "expected": expected})
        self.sim.schedule(delay, self.net.send_from_gpu, requester, msg)

    def reduce(self, contributor, addr, value, chunk=1024, expected=None,
               delay=0.0):
        expected = expected if expected is not None else 3
        msg = Message(Op.RED_CAIS, gpu_node(contributor),
                      gpu_node(addr.home_gpu), address=addr,
                      payload_bytes=chunk, payload=value,
                      meta={"expected": expected})
        self.sim.schedule(delay, self.net.send_from_gpu, contributor, msg)


def test_entries_for_rounds_up():
    assert entries_for(1, 128) == 1
    assert entries_for(128, 128) == 1
    assert entries_for(129, 128) == 2
    assert entries_for(0, 128) == 1


class TestLoadMerging:
    def test_all_requesters_get_the_data_with_one_fetch(self):
        f = Fabric()
        addr = Address(3, 0)
        for g in (0, 1, 2):
            f.load(g, addr)
        f.sim.run()
        for g in (0, 1, 2):
            assert len(f.load_responses[g]) == 1
            assert f.load_responses[g][0].payload == pytest.approx(4.0)
        # Home GPU served exactly one fill, not three.
        plane = 0
        up_home = f.net.up_links[(3, plane)].tracker
        chunk_wire = 1024 + 8 * 16
        assert up_home.bytes_transferred == chunk_wire
        assert f.stats.sessions_completed == 1
        assert f.stats.requests_started == 1
        assert f.stats.requests_merged == 2
        assert f.unit.open_sessions() == 0

    def test_late_request_served_from_cache(self):
        f = Fabric()
        addr = Address(2, 4096)
        f.load(0, addr, expected=3)
        f.load(1, addr, expected=3, delay=100.0)
        # Third requester arrives long after the data is cached.
        f.load(3, addr, expected=3, delay=20_000.0)
        f.sim.run()
        for g in (0, 1, 3):
            assert len(f.load_responses[g]) == 1
        assert f.stats.sessions_completed == 1
        assert f.unit.open_sessions() == 0

    def test_capacity_accounting_returns_to_zero(self):
        f = Fabric()
        addr = Address(1, 0)
        for g in (0, 2, 3):
            f.load(g, addr, chunk=4096)
        f.sim.run()
        assert f.unit.used_entries(1) == 0

    def test_bypass_when_table_full_of_load_waits(self):
        # Capacity 1 entry: the first load occupies it in Load-Wait (not
        # evictable), so a second load to a different address must bypass.
        f = Fabric(capacity=1)
        f.load(0, Address(3, 0), expected=1)
        f.load(1, Address(3, 8192), expected=1, delay=1.0)
        f.sim.run()
        assert f.stats.bypasses >= 1
        assert len(f.load_responses[0]) == 1
        assert len(f.load_responses[1]) == 1   # served via direct path
        assert f.load_responses[1][0].meta.get("direct")

    def test_session_wait_records_request_spread(self):
        f = Fabric()
        addr = Address(2, 0)
        f.load(0, addr, delay=0.0)
        f.load(1, addr, delay=5_000.0)
        f.load(3, addr, delay=9_000.0)
        f.sim.run()
        assert f.stats.average_wait_ns() == pytest.approx(9_000.0, rel=0.1)


class TestReductionMerging:
    def test_reduction_sums_and_writes_home_once(self):
        f = Fabric()
        addr = Address(2, 0)
        for g, v in ((0, 1.5), (1, 2.5), (3, 4.0)):
            f.reduce(g, addr, v)
        f.sim.run()
        assert len(f.stores[2]) == 1
        result = f.stores[2][0]
        assert result.payload == pytest.approx(8.0)
        assert result.meta["contributions"] == 3
        assert not result.meta["partial"]
        assert f.stats.sessions_completed == 1

    def test_downstream_traffic_collapses_to_one_chunk(self):
        f = Fabric()
        addr = Address(2, 0)
        chunk = 8192
        for g in (0, 1, 3):
            f.reduce(g, addr, None, chunk=chunk)
        f.sim.run()
        wire = chunk + (chunk // 128) * 16
        down = f.net.down_links[(2, 0)].tracker
        assert down.bytes_transferred == wire

    def test_lru_eviction_emits_partial_sum(self):
        # Capacity for one 1024 B session (8 entries); a second address
        # forces the first session out as a partial reduction.
        f = Fabric(capacity=8)
        a0, a1 = Address(2, 0), Address(2, 4096)
        f.reduce(0, a0, 1.0, expected=3)
        f.reduce(1, a0, 2.0, expected=3, delay=10.0)
        f.reduce(0, a1, 10.0, expected=3, delay=2_000.0)
        f.reduce(1, a1, 20.0, expected=3, delay=2_010.0)
        f.reduce(3, a1, 30.0, expected=3, delay=2_020.0)
        # The re-issued straggler opens a fresh single-contribution session.
        f.reduce(3, a0, 4.0, expected=1, delay=4_000.0)
        f.sim.run()
        # Home GPU 2 receives: partial (1+2), full (60), re-issued (4).
        payloads = sorted(m.payload for m in f.stores[2])
        assert payloads == [pytest.approx(3.0), pytest.approx(4.0),
                            pytest.approx(60.0)]
        contributions = sum(m.meta["contributions"] for m in f.stores[2])
        assert contributions == 6
        assert f.stats.lru_evictions >= 1
        assert f.stats.partial_reductions_emitted >= 1

    def test_timeout_evicts_stalled_reduction(self):
        f = Fabric(timeout_ns=5_000.0)
        addr = Address(1, 0)
        f.reduce(0, addr, 2.0, expected=3)   # peers never arrive
        f.sim.run()
        assert len(f.stores[1]) == 1
        assert f.stores[1][0].meta["partial"]
        assert f.stats.timeout_evictions == 1
        assert f.unit.open_sessions() == 0

    def test_timeout_not_fired_while_active(self):
        f = Fabric(timeout_ns=5_000.0)
        addr = Address(1, 0)
        f.reduce(0, addr, 1.0, expected=3, delay=0.0)
        f.reduce(2, addr, 1.0, expected=3, delay=4_000.0)
        f.reduce(3, addr, 1.0, expected=3, delay=8_000.0)
        f.sim.run()
        assert len(f.stores[1]) == 1
        assert not f.stores[1][0].meta["partial"]
        assert f.stats.timeout_evictions == 0

    def test_credits_emitted_on_completion(self):
        f = Fabric(emit_credits=True)
        addr = Address(2, 0)
        for g in (0, 1, 3):
            f.reduce(g, addr, 1.0)
        f.sim.run()
        total = sum(len(c) for c in f.credits.values())
        assert total == 3   # one credit back to each contributor
        assert not f.credits[2]        # the home GPU contributed locally


class TestOccupancy:
    def test_peak_occupancy_tracks_concurrent_sessions(self):
        f = Fabric(capacity=None)
        # Two concurrent 1024 B reductions at the same home = 16 entries.
        f.reduce(0, Address(2, 0), None, expected=3)
        f.reduce(0, Address(2, 4096), None, expected=3, delay=1.0)
        f.reduce(1, Address(2, 0), None, expected=3, delay=30_000.0)
        f.reduce(3, Address(2, 0), None, expected=3, delay=30_001.0)
        f.reduce(1, Address(2, 4096), None, expected=3, delay=30_002.0)
        f.reduce(3, Address(2, 4096), None, expected=3, delay=30_003.0)
        f.sim.run()
        assert f.stats.peak_entries_per_port() == 16
        assert f.stats.peak_bytes_per_port() == 2048
        assert f.unit.used_entries(2) == 0
