"""Unit tests for harness telemetry (repro.experiments.telemetry).

The progress board and the meta-trace are pure observers of the matrix
runner: these tests pin their arithmetic (counts, hit rate, EWMA, ETA),
their rendering, and that a collected meta-trace exports as valid
Chrome/Perfetto JSON with one span per executed task.
"""

import io
import json

from repro.experiments.telemetry import MetaTrace, ProgressBoard
from repro.obs.perfetto import to_chrome_trace, validate_chrome_trace


class TestProgressBoard:
    def test_counts_and_hit_rate(self):
        board = ProgressBoard(total=4, jobs=2, stream=io.StringIO())
        assert board.completed == 0 and board.remaining == 4
        assert board.hit_rate() == 0.0
        board.cache_hit()
        board.task_done(10.0)
        board.task_done(30.0)
        assert board.completed == 3 and board.remaining == 1
        assert board.hit_rate() == 1 / 3
        assert board.done == 2 and board.hits == 1

    def test_ewma_smooths_task_walls(self):
        board = ProgressBoard(total=3, jobs=1, stream=io.StringIO())
        assert board.eta_s() is None        # nothing simulated yet
        board.task_done(100.0)
        assert board.ewma_ms == 100.0
        board.task_done(200.0)
        assert board.ewma_ms == 0.2 * 200.0 + 0.8 * 100.0
        assert board.eta_s() is not None and board.eta_s() > 0

    def test_line_mentions_progress_and_cache(self):
        board = ProgressBoard(total=5, jobs=3, stream=io.StringIO())
        board.cache_hit()
        board.task_done(12.0)
        line = board.line()
        assert "2/5" in line
        assert "cache 50%" in line
        assert "workers 3" in line
        assert "ewma" in line and "eta" in line

    def test_render_and_close_write_to_stream(self):
        stream = io.StringIO()
        board = ProgressBoard(total=1, jobs=1, stream=stream)
        board.task_done(5.0)
        board.close()
        out = stream.getvalue()
        assert "1/1" in out
        assert "1 tasks in" in out and "1 simulated" in out

    def test_broken_stream_never_raises(self):
        class Broken(io.StringIO):
            def write(self, *a):
                raise OSError("gone")
        board = ProgressBoard(total=1, jobs=1, stream=Broken())
        board.task_done(5.0)     # must not raise
        board.close()

    def test_utilization_capped_at_one(self):
        board = ProgressBoard(total=1, jobs=1, stream=io.StringIO())
        board.task_done(10_000_000.0)     # absurd busy time
        assert board.utilization() == 1.0


class TestMetaTrace:
    def _collect(self):
        meta = MetaTrace()
        base = meta.epoch
        meta.cache_hit(0, "TP-NVLS tiny", "c" * 64)
        meta.task_span(1, "CAIS tiny", "a" * 64, pid=111,
                       start_s=base + 0.010, end_s=base + 0.030,
                       wall_ms=20.0)
        meta.task_span(2, "T3 tiny", "b" * 64, pid=222,
                       start_s=base + 0.015, end_s=base + 0.040,
                       wall_ms=25.0)
        return meta

    def test_span_per_task_and_hit_instants(self):
        meta = self._collect()
        assert meta.span_count() == 2
        events = meta.to_tracer().events()
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(spans) == 2
        assert all(e["cat"] == "sim-task" for e in spans)
        assert [e["name"] for e in instants] == ["cache hit: TP-NVLS tiny"]
        assert {e["args"]["task"] for e in spans} == {1, 2}

    def test_workers_get_one_track_each(self):
        payload = to_chrome_trace(self._collect().to_tracer())
        names = {e["args"]["name"] for e in payload["traceEvents"]
                 if e.get("name") == "thread_name"}
        assert "scheduler" in names
        assert any(n.startswith("worker 0") for n in names)
        assert any(n.startswith("worker 1") for n in names)

    def test_exports_as_valid_perfetto_json(self, tmp_path):
        path = tmp_path / "meta.json"
        self._collect().write(str(path))
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_clock_skew_clamped_to_zero(self):
        meta = MetaTrace()
        meta.task_span(0, "x", "a" * 64, pid=1,
                       start_s=meta.epoch - 100.0,
                       end_s=meta.epoch - 99.0, wall_ms=1.0)
        span = next(e for e in meta.to_tracer().events()
                    if e["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 0.0
