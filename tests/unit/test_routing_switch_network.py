"""Unit tests for routing, the switch, and the wired fabric."""

import pytest

from repro.common.config import dgx_h100_config
from repro.common.errors import RoutingError
from repro.common.events import Simulator
from repro.interconnect.message import (
    Address, Message, Op, gpu_node, switch_node)
from repro.interconnect.network import Network
from repro.interconnect.routing import plane_for_address, plane_for_stripe


class TestRouting:
    def test_deterministic(self):
        addr = Address(3, 8192)
        assert (plane_for_address(addr, 4) ==
                plane_for_address(Address(3, 8192), 4))

    def test_planes_in_range(self):
        for home in range(8):
            for off in range(0, 1 << 20, 4096):
                assert 0 <= plane_for_address(Address(home, off), 4) < 4

    def test_chunks_spread_across_planes(self):
        counts = [0, 0, 0, 0]
        for off in range(0, 4096 * 256, 4096):
            counts[plane_for_address(Address(0, off), 4)] += 1
        # Even-ish spread: no plane starves or dominates.
        assert min(counts) > 256 * 0.15
        assert max(counts) < 256 * 0.40

    def test_stripe_round_robin(self):
        assert [plane_for_stripe(i, 4) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_invalid_plane_count(self):
        with pytest.raises(ValueError):
            plane_for_address(Address(0, 0), 0)
        with pytest.raises(ValueError):
            plane_for_stripe(1, -1)


class TestNetwork:
    def make(self, num_gpus=4, num_switches=2):
        sim = Simulator()
        cfg = dgx_h100_config(num_gpus=num_gpus).with_gpus(num_gpus)
        cfg = cfg.__class__(**{**cfg.__dict__, "num_switches": num_switches})
        net = Network(sim, cfg)
        inboxes = {g: [] for g in range(num_gpus)}
        for g in range(num_gpus):
            net.register_gpu(g, inboxes[g].append)
        return sim, net, inboxes

    def test_gpu_to_gpu_delivery(self):
        sim, net, inboxes = self.make()
        msg = Message(Op.STORE, gpu_node(0), gpu_node(2), payload_bytes=1024,
                      address=Address(2, 0))
        net.send_from_gpu(0, msg)
        sim.run()
        assert inboxes[2] == [msg]
        assert not inboxes[0] and not inboxes[1] and not inboxes[3]

    def test_delivery_time_includes_two_links_and_hop(self):
        sim, net, inboxes = self.make()
        cfg = net.config
        msg = Message(Op.STORE, gpu_node(0), gpu_node(1), payload_bytes=128,
                      address=Address(1, 0))
        net.send_from_gpu(0, msg)
        sim.run()
        ser = msg.wire_bytes() / cfg.link.bandwidth_gbps
        expected = 2 * (ser + cfg.link.latency_ns) + cfg.switch.hop_latency_ns
        assert sim.now == pytest.approx(expected)

    def test_addressed_traffic_converges_to_one_plane(self):
        sim, net, _ = self.make(num_gpus=4, num_switches=2)
        addr = Address(3, 4096)
        planes = set()
        for g in range(3):
            msg = Message(Op.LD_CAIS_REQ, gpu_node(g), gpu_node(3),
                          address=addr)
            planes.add(net.send_from_gpu(g, msg))
        assert len(planes) == 1

    def test_unaddressed_traffic_stripes(self):
        sim, net, _ = self.make(num_gpus=2, num_switches=2)
        planes = [
            net.send_from_gpu(
                0, Message(Op.STORE, gpu_node(0), gpu_node(1),
                           payload_bytes=16), stripe=i)
            for i in range(4)
        ]
        assert planes == [0, 1, 0, 1]

    def test_register_unknown_gpu_rejected(self):
        sim, net, _ = self.make()
        with pytest.raises(RoutingError):
            net.register_gpu(99, lambda m: None)

    def test_switch_rejects_non_gpu_destination(self):
        sim, net, _ = self.make()
        msg = Message(Op.STORE, gpu_node(0), switch_node(1), payload_bytes=16,
                      address=Address(0, 0))
        net.send_from_gpu(0, msg)
        with pytest.raises(RoutingError):
            sim.run()

    def test_average_utilization_counts_all_links(self):
        sim, net, _ = self.make(num_gpus=2, num_switches=1)
        msg = Message(Op.STORE, gpu_node(0), gpu_node(1),
                      payload_bytes=112500, address=Address(1, 0))
        net.send_from_gpu(0, msg)
        sim.run()
        t0, t1 = net.active_span()
        assert t1 > t0
        util = net.average_utilization(t0, t1)
        assert 0.0 < util <= 1.0

    def test_active_span_empty_fabric(self):
        sim, net, _ = self.make()
        assert net.active_span() == (0.0, 0.0)
