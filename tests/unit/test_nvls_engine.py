"""Unit tests for the NVLS multimem engine, including functional reduction."""

import pytest

from repro.common.config import dgx_h100_config
from repro.common.errors import ProtocolError
from repro.common.events import Simulator
from repro.interconnect.message import (
    Address, Message, Op, gpu_node)
from repro.interconnect.network import Network
from repro.nvls.engine import NvlsEngine


class Fabric:
    """A fabric with NVLS engines and scripted GPU endpoints."""

    def __init__(self, num_gpus=4, num_switches=1):
        self.sim = Simulator()
        cfg = dgx_h100_config(num_gpus=num_gpus)
        cfg = cfg.__class__(**{**cfg.__dict__, "num_gpus": num_gpus,
                               "num_switches": num_switches})
        self.net = Network(self.sim, cfg)
        self.engines = []
        for sw in self.net.switches:
            engine = NvlsEngine()
            sw.attach_engine(engine)
            self.engines.append(engine)
        self.inboxes = {g: [] for g in range(num_gpus)}
        # GPU endpoints answer ld_reduce gathers with their local value.
        self.local_values = {g: float(g + 1) for g in range(num_gpus)}
        for g in range(num_gpus):
            self.net.register_gpu(g, self._make_receiver(g))

    def _make_receiver(self, g):
        def receive(msg):
            if msg.op is Op.MULTIMEM_LD_REDUCE_GATHER:
                resp = Message(
                    op=Op.MULTIMEM_LD_REDUCE_RESP, src=gpu_node(g),
                    dst=gpu_node(msg.meta["requester"]),
                    payload_bytes=msg.meta["chunk_bytes"],
                    address=msg.address, payload=self.local_values[g],
                    meta={"nvls_pull": True, "requester": msg.meta["requester"],
                          "chunk_bytes": msg.meta["chunk_bytes"]})
                self.net.send_from_gpu(g, resp)
            else:
                self.inboxes[g].append(msg)
        return receive


def test_multicast_replicates_to_members_except_source():
    f = Fabric()
    msg = Message(Op.MULTIMEM_ST, gpu_node(0), gpu_node(0),
                  payload_bytes=4096, address=Address(0, 0),
                  payload=7.0, meta={"members": [0, 1, 2, 3]})
    f.net.send_from_gpu(0, msg)
    f.sim.run()
    assert not f.inboxes[0]
    for g in (1, 2, 3):
        assert len(f.inboxes[g]) == 1
        got = f.inboxes[g][0]
        assert got.op is Op.STORE
        assert got.payload == 7.0
        assert got.payload_bytes == 4096
    assert f.engines[0].multicasts == 1


def test_multicast_requires_members():
    f = Fabric()
    msg = Message(Op.MULTIMEM_ST, gpu_node(0), gpu_node(0),
                  payload_bytes=64, address=Address(0, 0))
    f.net.send_from_gpu(0, msg)
    with pytest.raises(ProtocolError):
        f.sim.run()


def test_pull_reduction_returns_sum_of_contributions():
    f = Fabric()
    addr = Address(1, 4096)
    req = Message(Op.MULTIMEM_LD_REDUCE_REQ, gpu_node(1), gpu_node(1),
                  address=addr,
                  meta={"members": [0, 2, 3], "chunk_bytes": 2048})
    f.net.send_from_gpu(1, req)
    f.sim.run()
    assert len(f.inboxes[1]) == 1
    resp = f.inboxes[1][0]
    assert resp.op is Op.MULTIMEM_LD_REDUCE_RESP
    # GPUs 0, 2, 3 hold values 1, 3, 4 -> sum 8.
    assert resp.payload == pytest.approx(8.0)
    assert resp.payload_bytes == 2048
    assert f.engines[0].open_sessions() == 0


def test_pull_reduction_requires_address_and_members():
    f = Fabric()
    bad = Message(Op.MULTIMEM_LD_REDUCE_REQ, gpu_node(0), gpu_node(0),
                  address=Address(0, 0), meta={})
    f.net.send_from_gpu(0, bad)
    with pytest.raises(ProtocolError):
        f.sim.run()


def test_push_reduction_accumulates_and_writes_home():
    f = Fabric()
    addr = Address(2, 0)
    for g in (0, 1, 3):
        msg = Message(Op.MULTIMEM_RED, gpu_node(g), gpu_node(2),
                      payload_bytes=1024, address=addr,
                      payload=float(g), meta={"expected": 3})
        f.net.send_from_gpu(g, msg)
    f.sim.run()
    assert len(f.inboxes[2]) == 1
    result = f.inboxes[2][0]
    assert result.op is Op.STORE
    assert result.payload == pytest.approx(0.0 + 1.0 + 3.0)
    assert f.engines[0].push_reductions == 1
    assert f.engines[0].open_sessions() == 0


def test_push_reduction_downstream_traffic_is_single_chunk():
    """The defining NVLS property: K pushes in, 1 write out (Fig. 10a)."""
    f = Fabric()
    addr = Address(2, 0)
    chunk = 8192
    for g in (0, 1, 3):
        msg = Message(Op.MULTIMEM_RED, gpu_node(g), gpu_node(2),
                      payload_bytes=chunk, address=addr,
                      meta={"expected": 3})
        f.net.send_from_gpu(g, msg)
    f.sim.run()
    plane = f.net.plane_for(Message(Op.MULTIMEM_RED, gpu_node(0),
                                    gpu_node(2), address=addr))
    down = f.net.down_links[(2, plane)].tracker
    up_total = sum(f.net.up_links[(g, plane)].tracker.bytes_transferred
                   for g in (0, 1, 3))
    wire_chunk = chunk + (chunk // 128) * 16
    assert down.bytes_transferred == wire_chunk
    assert up_total == 3 * wire_chunk


def test_push_reduction_requires_expected_count():
    f = Fabric()
    msg = Message(Op.MULTIMEM_RED, gpu_node(0), gpu_node(1),
                  payload_bytes=64, address=Address(1, 0))
    f.net.send_from_gpu(0, msg)
    with pytest.raises(ProtocolError):
        f.sim.run()


def test_engine_ignores_plain_traffic():
    f = Fabric()
    msg = Message(Op.STORE, gpu_node(0), gpu_node(3), payload_bytes=256,
                  address=Address(3, 0))
    f.net.send_from_gpu(0, msg)
    f.sim.run()
    assert len(f.inboxes[3]) == 1
    assert f.engines[0].multicasts == 0
