"""Unit tests for the NVLink model."""

import pytest

from repro.common.config import LinkSpec
from repro.common.errors import SimulationError
from repro.common.events import Simulator
from repro.interconnect.link import Link
from repro.interconnect.message import Message, Op, gpu_node, switch_node


def make_link(sim, bandwidth=100.0, latency=250.0, traffic_control=False):
    spec = LinkSpec(bandwidth_gbps=bandwidth, latency_ns=latency)
    link = Link(sim, spec, "test", traffic_control=traffic_control)
    delivered = []
    link.deliver = lambda msg: delivered.append((sim.now, msg))
    return link, delivered


def data_msg(nbytes, op=Op.STORE):
    return Message(op, gpu_node(0), gpu_node(1), payload_bytes=nbytes)


def test_single_message_latency():
    sim = Simulator()
    link, delivered = make_link(sim, bandwidth=100.0, latency=250.0)
    # 1024 B payload -> 8 packets -> 1152 wire bytes -> 11.52 ns serialization.
    msg = data_msg(1024)
    link.send(msg)
    sim.run()
    assert len(delivered) == 1
    t, got = delivered[0]
    assert got is msg
    assert t == pytest.approx(1024 * 1.125 / 100.0 + 250.0)


def test_messages_serialize_back_to_back():
    sim = Simulator()
    link, delivered = make_link(sim, bandwidth=1.0, latency=0.0)
    link.send(data_msg(128))    # wire 144 B -> 144 ns
    link.send(data_msg(128))    # starts at 144, done 288
    sim.run()
    times = [t for t, _ in delivered]
    assert times[0] == pytest.approx(144.0)
    assert times[1] == pytest.approx(288.0)


def test_propagation_overlaps_next_serialization():
    sim = Simulator()
    link, delivered = make_link(sim, bandwidth=1.0, latency=1000.0)
    link.send(data_msg(128))
    link.send(data_msg(128))
    sim.run()
    times = [t for t, _ in delivered]
    # Without pipelining the second arrival would be at 2*(144+1000).
    assert times[0] == pytest.approx(1144.0)
    assert times[1] == pytest.approx(1288.0)


def test_unwired_link_rejects_send():
    sim = Simulator()
    link = Link(sim, LinkSpec(), "unwired")
    with pytest.raises(SimulationError):
        link.send(data_msg(1))


def test_fifo_head_of_line_blocking():
    """Without traffic control a large reduction blocks a tiny load request."""
    sim = Simulator()
    link, delivered = make_link(sim, bandwidth=1.0, latency=0.0)
    link.send(data_msg(128 * 100, op=Op.RED_CAIS))      # 14400 ns
    link.send(Message(Op.LD_CAIS_REQ, gpu_node(0), gpu_node(1)))
    sim.run()
    load_time = [t for t, m in delivered if m.op is Op.LD_CAIS_REQ][0]
    assert load_time > 14000.0


def test_virtual_channels_bypass_head_of_line_blocking():
    """With traffic control the load request does not wait out the burst."""
    sim = Simulator()
    link, delivered = make_link(sim, bandwidth=1.0, latency=0.0,
                                traffic_control=True)
    for _ in range(10):
        link.send(data_msg(128 * 10, op=Op.RED_CAIS))   # 1440 ns each
    link.send(Message(Op.LD_CAIS_REQ, gpu_node(0), gpu_node(1)))
    sim.run()
    load_time = [t for t, m in delivered if m.op is Op.LD_CAIS_REQ][0]
    # Served right after the in-flight chunk, not after all ten.
    assert load_time < 3000.0


def test_round_robin_interleaves_classes():
    sim = Simulator()
    link, delivered = make_link(sim, bandwidth=1.0, latency=0.0,
                                traffic_control=True)
    for _ in range(3):
        link.send(data_msg(128, op=Op.RED_CAIS))
        link.send(data_msg(128, op=Op.LD_CAIS_RESP))
    sim.run()
    classes = [m.traffic_class.value for _, m in delivered]
    # Strict alternation after the first pick.
    assert classes[:4] in (["reduction", "load", "reduction", "load"],
                           ["load", "reduction", "load", "reduction"])


def test_tracker_records_bytes():
    sim = Simulator()
    link, _ = make_link(sim, bandwidth=10.0)
    link.send(data_msg(1024))
    sim.run()
    assert link.tracker.bytes_transferred == 1024 + 8 * 16
    assert link.tracker.messages == 1


def test_peak_queue_depth():
    sim = Simulator()
    link, _ = make_link(sim, bandwidth=1.0)
    for _ in range(5):
        link.send(data_msg(128))
    assert link.peak_queue_depth >= 4
    sim.run()
    assert link.queue_depth() == 0
