"""Unit tests for the baseline systems' lowering machinery."""

import pytest

from repro.cais import compiler as cais_compiler
from repro.common.config import dgx_h100_config
from repro.common.errors import WorkloadError
from repro.llm import tiling as llm_tiling
from repro.llm.graph import CommKind, GemmShape, Graph, LogicalOp, OpKind
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.systems import (
    BarrierRunner, DirectComm, Harness, NvlsComm, OverlapRunner, RingComm,
    SYSTEM_CLASSES, T3Runner, make_system)

TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)


def fresh():
    llm_tiling.reset_tensor_ids()
    cais_compiler.reset_group_ids()


def tiny_gemm(name, deps=(), m=256, n=256, k=256, sublayer=None):
    return LogicalOp(name, OpKind.GEMM, deps=deps,
                     gemm=GemmShape(m, n, k), sublayer=sublayer)


class TestBarrierRunner:
    def make(self, nvls=True):
        fresh()
        harness = Harness(dgx_h100_config(), nvls=nvls, jitter=False)
        comm = NvlsComm(harness) if nvls else RingComm(harness)
        return harness, BarrierRunner(harness, comm, tiling=TILING)

    def test_ops_respect_dependencies(self):
        harness, runner = self.make()
        g = Graph("t")
        g.add(tiny_gemm("a"))
        g.add(LogicalOp("c", OpKind.COMM, comm=CommKind.ALL_REDUCE,
                        comm_bytes=1 << 20, deps=("a",)))
        g.add(tiny_gemm("b", deps=("c",)))
        order = []
        done = {"ok": False}
        runner.run_graph(g, on_done=lambda: done.update(ok=True))
        harness.executor.run()
        assert done["ok"]

    def test_parallel_branches_run_concurrently(self):
        harness, runner = self.make()
        g = Graph("t")
        g.add(tiny_gemm("a", m=2048, n=2048))
        g.add(tiny_gemm("b", m=2048, n=2048))
        done = {"ok": False}
        runner.run_graph(g, on_done=lambda: done.update(ok=True))
        serial_estimate = None
        harness.executor.run()
        assert done["ok"]
        # Both kernels fit concurrently: makespan ~ one kernel's makespan.
        # (16x16 TB grid over 132 slots -> ~2 waves each; concurrent ~4 vs
        # serial 4+: loose check that they interleaved.)
        assert harness.executor.tbs_completed == 2 * 16 * 16 * 8

    def test_graph_sequence_is_serial(self):
        harness, runner = self.make()
        g1 = Graph("g1")
        g1.add(tiny_gemm("a"))
        g2 = Graph("g2")
        g2.add(tiny_gemm("b"))
        marks = []
        runner.run_graphs([g1, g2], on_done=lambda: marks.append("done"))
        harness.executor.run()
        assert marks == ["done"]

    def test_empty_sequence_rejected(self):
        harness, runner = self.make()
        with pytest.raises(WorkloadError):
            runner.run_graphs([])


class TestOverlapRunner:
    def test_gemm_comm_pair_absorbed(self):
        fresh()
        harness = Harness(dgx_h100_config(), nvls=True, jitter=False)
        runner = OverlapRunner(harness, NvlsComm(harness), tiling=TILING,
                               partitions=4)
        g = Graph("t")
        g.add(tiny_gemm("gemm", m=1024, n=1024))
        g.add(LogicalOp("ar", OpKind.COMM, comm=CommKind.ALL_REDUCE,
                        comm_bytes=8 << 20, deps=("gemm",)))
        pairs = runner._absorbed_comms(g)
        assert pairs == {"gemm": "ar"}
        done = {"ok": False}
        runner.run_graph(g, on_done=lambda: done.update(ok=True))
        harness.executor.run()
        assert done["ok"]

    def test_allgather_not_absorbed(self):
        fresh()
        harness = Harness(dgx_h100_config(), nvls=True, jitter=False)
        runner = OverlapRunner(harness, NvlsComm(harness), tiling=TILING)
        g = Graph("t")
        g.add(tiny_gemm("gemm"))
        g.add(LogicalOp("ag", OpKind.COMM, comm=CommKind.ALL_GATHER,
                        comm_bytes=1 << 20, deps=("gemm",)))
        assert runner._absorbed_comms(g) == {}

    def test_overlap_beats_barrier_on_gemm_ar(self):
        """The point of software pipelining: chunked GEMM->AR overlap is
        faster than GEMM then AR."""
        def run(runner_cls):
            fresh()
            harness = Harness(dgx_h100_config(), nvls=True, jitter=False)
            comm = NvlsComm(harness)
            runner = runner_cls(harness, comm, tiling=TILING)
            g = Graph("t")
            g.add(tiny_gemm("gemm", m=2048, n=4096, k=2048))
            g.add(LogicalOp("ar", OpKind.COMM, comm=CommKind.ALL_REDUCE,
                            comm_bytes=16 << 20, deps=("gemm",)))
            runner.run_graph(g)
            return harness.executor.run()

        assert run(OverlapRunner) < run(BarrierRunner)

    def test_invalid_partitions(self):
        fresh()
        harness = Harness(dgx_h100_config(), nvls=True)
        with pytest.raises(WorkloadError):
            OverlapRunner(harness, NvlsComm(harness), partitions=0)


class TestT3Runner:
    def test_rs_absorbed_into_producer_and_ag_into_consumer(self):
        fresh()
        model = LLAMA_7B.scaled(0.125)
        graph = sublayer_graph(model, 8, "L1")
        harness = Harness(dgx_h100_config(), jitter=False)
        runner = T3Runner(harness, tiling=TILING, nvls=False)
        done = {"ok": False}
        runner.run_graph(graph, on_done=lambda: done.update(ok=True))
        harness.executor.run()
        assert done["ok"]

    def test_nvls_variant_uses_push_all_gather(self):
        fresh()
        model = LLAMA_7B.scaled(0.125)
        graph = sublayer_graph(model, 8, "L1")
        harness = Harness(dgx_h100_config(), nvls=True, jitter=False)
        runner = T3Runner(harness, tiling=TILING, nvls=True)
        done = {"ok": False}
        runner.run_graph(graph, on_done=lambda: done.update(ok=True))
        harness.executor.run()
        assert done["ok"]
        # The NVLS engine's multicast path was exercised.
        from repro.nvls.engine import NvlsEngine
        engines = [e for sw in harness.network.switches
                   for e in sw.engines if isinstance(e, NvlsEngine)]
        assert sum(e.multicasts for e in engines) > 0


class TestDirectComm:
    def test_all_collectives_degenerate_to_full_replica_reads(self):
        fresh()
        harness = Harness(dgx_h100_config(), jitter=False)
        comm = DirectComm(harness, chunk_bytes=1 << 20,
                          locality_fraction=0.0)
        done = []
        comm.run(CommKind.ALL_REDUCE, 8 << 20, lambda: done.append("ar"))
        harness.sim.run()
        assert done == ["ar"]
        # Every GPU pulled every peer's full partial: per-GPU down traffic
        # ~ (K-1) x nbytes.
        k = harness.config.num_gpus
        down = sum(l.tracker.bytes_transferred
                   for l in harness.network.down_links.values())
        assert down > (k - 1) * (8 << 20) * k * 0.9

    def test_locality_fraction_bounds(self):
        fresh()
        harness = Harness(dgx_h100_config())
        with pytest.raises(WorkloadError):
            DirectComm(harness, locality_fraction=1.0)

    def test_bad_size_rejected(self):
        fresh()
        harness = Harness(dgx_h100_config())
        comm = DirectComm(harness)
        with pytest.raises(WorkloadError):
            comm.run(CommKind.ALL_REDUCE, 7, lambda: None)


class TestSystemRegistry:
    def test_all_names_construct(self):
        cfg = dgx_h100_config()
        for name in SYSTEM_CLASSES:
            system = make_system(name, cfg, tiling=TILING)
            assert system.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            make_system("GPT-9", dgx_h100_config())

    def test_run_requires_graphs(self):
        system = make_system("CAIS", dgx_h100_config(), tiling=TILING)
        with pytest.raises(WorkloadError):
            system.run([])

    def test_compute_slot_restriction(self):
        harness = Harness(dgx_h100_config())
        harness.restrict_compute_slots(0.5)
        assert harness.executor.gpus[0].pool_capacity("default") == 66
        with pytest.raises(WorkloadError):
            harness.restrict_compute_slots(0.0)
