"""Unit tests for causal event recording (repro.obs.causality)."""

import pytest

from repro import obs
from repro.common.events import Simulator
from repro.obs.causality import (CATEGORIES, EDGE_CATEGORY, GEMM_COMPUTE,
                                 LINK_SERIALIZATION, NO_CAUSE,
                                 CausalityRecorder, NullCausality)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


# ---------------------------------------------------------------------------
# Recorder basics
# ---------------------------------------------------------------------------

def test_node_ids_are_creation_order():
    cz = CausalityRecorder()
    a = cz.node(GEMM_COMPUTE, 0.0, 10.0, "a")
    b = cz.node(LINK_SERIALIZATION, 10.0, 12.0, "b", parents=((a, "queue"),))
    assert (a, b) == (0, 1)
    assert len(cz) == 2
    assert cz.get(b).parents == [(a, "queue")]


def test_no_cause_parents_are_filtered():
    cz = CausalityRecorder()
    n = cz.node(GEMM_COMPUTE, 0.0, 1.0, "n",
                parents=((NO_CAUSE, "dep"), (NO_CAUSE, "slot")))
    assert cz.get(n).parents == []


def test_node_rejects_negative_duration():
    cz = CausalityRecorder()
    with pytest.raises(ValueError):
        cz.node(GEMM_COMPUTE, 10.0, 5.0, "bad")


def test_every_edge_kind_maps_to_a_category():
    for kind, category in EDGE_CATEGORY.items():
        assert category in CATEGORIES, (kind, category)


# ---------------------------------------------------------------------------
# Null object (the disabled path)
# ---------------------------------------------------------------------------

def test_null_causality_is_inert_and_immutable():
    null = NullCausality()
    assert not null.enabled
    assert null.current == NO_CAUSE
    assert null.node(GEMM_COMPUTE, 0.0, 1.0) == NO_CAUSE
    # The null object is shared; accidental per-run state would leak
    # between runs, so instance assignment must fail loudly.
    with pytest.raises(AttributeError):
        null.current = 5


def test_default_ambient_is_null():
    assert not obs.current_causality().enabled


# ---------------------------------------------------------------------------
# Ambient propagation through the simulator
# ---------------------------------------------------------------------------

def test_event_callbacks_inherit_the_schedulers_cause():
    cz = CausalityRecorder()
    obs.install(causality=cz)
    sim = Simulator()
    seen = []

    def child():
        seen.append(cz.current)

    def parent():
        cz.current = cz.node(GEMM_COMPUTE, 0.0, sim.now, "parent")
        sim.schedule(5.0, child)
        sim.schedule(9.0, child)

    sim.schedule(1.0, parent)
    sim.run()
    # Both children observe the parent's node as their ambient cause.
    assert seen == [0, 0]


def test_sibling_events_do_not_leak_causes():
    cz = CausalityRecorder()
    obs.install(causality=cz)
    sim = Simulator()
    seen = {}

    def mark(name):
        seen[name] = cz.current

    def a():
        cz.current = cz.node(GEMM_COMPUTE, 0.0, sim.now, "a")
        sim.schedule(10.0, mark, "from-a")

    def b():
        # Scheduled from the root (cause NO_CAUSE); runs after a() set
        # the ambient — the restore on dispatch must reset it.
        mark("from-root")

    sim.schedule(1.0, a)
    sim.schedule(2.0, b)
    sim.run()
    assert seen["from-root"] == NO_CAUSE
    assert seen["from-a"] == 0


def test_events_without_a_recorder_carry_no_cause():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    assert ev.cause == NO_CAUSE
    sim.run()
