"""Unit tests for JSON run-result export."""

import json

import pytest

from repro.common.config import dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.metrics.export import (
    dump_run_result, load_run_summary, run_result_to_dict)
from repro.systems import make_system

TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)


@pytest.fixture(scope="module")
def result():
    model = LLAMA_7B.scaled(0.125)
    return make_system("CAIS", dgx_h100_config(), tiling=TILING).run(
        [sublayer_graph(model, 8, "L1")])


def test_dict_has_headline_fields(result):
    out = run_result_to_dict(result)
    assert out["system"] == "CAIS"
    assert out["makespan_ns"] > 0
    assert 0 < out["gpu_utilization"] <= 1
    assert 0 < out["link_utilization"] <= 1
    assert out["bytes_on_fabric"] > 0
    assert out["merge"]["sessions_completed"] > 0
    names = {k["name"] for k in out["kernels"]}
    assert {"gemm1", "ln", "gemm2"} <= names


def test_dict_is_json_serializable(result):
    text = json.dumps(run_result_to_dict(result, time_series_windows=8))
    back = json.loads(text)
    assert len(back["utilization_series"]) == 8
    for sample in back["utilization_series"]:
        assert 0.0 <= sample["utilization"] <= 1.0


def test_series_skipped_by_default(result):
    assert "utilization_series" not in run_result_to_dict(result)


def test_dump_and_load_roundtrip(result, tmp_path):
    path = tmp_path / "run.json"
    dump_run_result(result, str(path), time_series_windows=4)
    back = load_run_summary(str(path))
    assert back["system"] == "CAIS"
    assert back["makespan_ns"] == pytest.approx(result.makespan_ns)
    assert len(back["utilization_series"]) == 4
