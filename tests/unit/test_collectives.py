"""Unit tests for ring and NVLS collectives, including functional payloads."""

import pytest

from repro.common.config import dgx_h100_config
from repro.common.events import Simulator
from repro.collectives.nvls_collectives import NvlsCollective
from repro.collectives.reference import (
    nvls_allreduce_busbw_gbps, nvls_allreduce_time_ns,
    ring_all_gather_time_ns, ring_allreduce_time_ns,
    ring_reduce_scatter_time_ns)
from repro.collectives.ring import RingCollective
from repro.common.errors import WorkloadError
from repro.gpu.executor import Executor
from repro.interconnect.network import Network
from repro.nvls.engine import NvlsEngine


def make_fabric(num_gpus=4, num_switches=2, nvls=False, chunk=65536):
    sim = Simulator()
    cfg = dgx_h100_config(num_gpus=num_gpus)
    cfg = cfg.__class__(**{**cfg.__dict__, "num_gpus": num_gpus,
                           "num_switches": num_switches})
    net = Network(sim, cfg)
    ex = Executor(sim, cfg, net, jitter_enabled=False)
    if nvls:
        for sw in net.switches:
            sw.attach_engine(NvlsEngine())
    return sim, cfg, net, ex


def values(gpu, shard, chunk):
    """Deterministic functional payloads: value = gpu+1, per chunk."""
    return float(gpu + 1)


class TestRingCollectives:
    def test_reduce_scatter_completes_and_sums(self):
        sim, cfg, net, ex = make_fabric()
        ring = RingCollective(net, ex.gpus, chunk_bytes=65536)
        done = []
        reduced = []
        ring.reduce_scatter(1 << 20, on_complete=lambda: done.append(1),
                            on_chunk=lambda s, c, g: reduced.append((s, g)),
                            local_values=values)
        sim.run()
        assert done == [1]
        # Every shard lands exactly at its home GPU.
        assert sorted(set(reduced)) == [(s, s) for s in range(4)]

    def test_reduce_scatter_chunk_count(self):
        sim, cfg, net, ex = make_fabric()
        ring = RingCollective(net, ex.gpus, chunk_bytes=65536)
        chunks = []
        ring.reduce_scatter(1 << 20, on_complete=lambda: None,
                            on_chunk=lambda s, c, g: chunks.append((s, c)))
        sim.run()
        # 1 MiB over 4 GPUs = 256 KiB shard = 4 chunks of 64 KiB.
        assert len(chunks) == 16

    def test_all_gather_distributes_all_shards(self):
        sim, cfg, net, ex = make_fabric()
        ring = RingCollective(net, ex.gpus, chunk_bytes=65536)
        got = []
        ring.all_gather(1 << 20, on_complete=lambda: None,
                        on_chunk=lambda s, c, g: got.append((s, g)))
        sim.run()
        # Each GPU receives the 3 foreign shards.
        for g in range(4):
            foreign = {s for s, gg in got if gg == g}
            assert foreign == set(range(4)) - {g}

    def test_all_reduce_time_close_to_alpha_beta_model(self):
        sim, cfg, net, ex = make_fabric(num_gpus=8, num_switches=4)
        ring = RingCollective(net, ex.gpus, chunk_bytes=262144)
        n = 64 << 20
        rid = ring.all_reduce(n, on_complete=lambda: None)
        sim.run()
        model = ring_allreduce_time_ns(n, cfg)
        assert ring.finish_time(rid) == pytest.approx(model, rel=0.35)

    def test_ring_rejects_bad_sizes(self):
        sim, cfg, net, ex = make_fabric()
        ring = RingCollective(net, ex.gpus)
        with pytest.raises(WorkloadError):
            ring.reduce_scatter(3, on_complete=lambda: None)
        with pytest.raises(WorkloadError):
            ring.all_gather(0, on_complete=lambda: None)

    def test_concurrent_runs_do_not_interfere(self):
        sim, cfg, net, ex = make_fabric()
        ring = RingCollective(net, ex.gpus, chunk_bytes=65536)
        done = []
        ring.reduce_scatter(1 << 20, on_complete=lambda: done.append("rs"))
        ring.all_gather(1 << 20, on_complete=lambda: done.append("ag"))
        sim.run()
        assert sorted(done) == ["ag", "rs"]


class TestNvlsCollectives:
    def test_reduce_scatter_pull_sums_peers_plus_local(self):
        sim, cfg, net, ex = make_fabric(nvls=True)
        coll = NvlsCollective(net, ex.gpus, chunk_bytes=65536,
                              local_values=values)
        # Peers hold gpu+1; the switch sums peers, the home adds its own.
        done = []
        coll.reduce_scatter(1 << 20, on_complete=lambda: done.append(1))
        sim.run()
        assert done == [1]

    def test_all_gather_push_reaches_every_peer(self):
        sim, cfg, net, ex = make_fabric(nvls=True)
        coll = NvlsCollective(net, ex.gpus, chunk_bytes=65536)
        got = []
        coll.all_gather(1 << 20, on_complete=lambda: None,
                        on_chunk=lambda s, c, g: got.append((s, g)))
        sim.run()
        for g in range(4):
            assert {s for s, gg in got if gg == g} == set(range(4)) - {g}

    def test_all_reduce_one_shot_completes(self):
        sim, cfg, net, ex = make_fabric(nvls=True)
        coll = NvlsCollective(net, ex.gpus, chunk_bytes=65536,
                              local_values=values)
        done = []
        rid = coll.all_reduce(1 << 20, on_complete=lambda: done.append(1))
        sim.run()
        assert done == [1]
        assert coll.finish_time(rid) > 0

    def test_nvls_beats_ring_on_large_messages(self):
        """The headline NVLS property the paper leans on (2-8x)."""
        n = 256 << 20
        sim, cfg, net, ex = make_fabric(num_gpus=8, num_switches=4,
                                        nvls=True)
        coll = NvlsCollective(net, ex.gpus, chunk_bytes=256 << 10)
        rid = coll.all_reduce(n, on_complete=lambda: None)
        sim.run()
        t_nvls = coll.finish_time(rid)

        sim2, cfg2, net2, ex2 = make_fabric(num_gpus=8, num_switches=4)
        ring = RingCollective(net2, ex2.gpus, chunk_bytes=256 << 10)
        rid2 = ring.all_reduce(n, on_complete=lambda: None)
        sim2.run()
        t_ring = ring.finish_time(rid2)
        assert t_ring / t_nvls > 1.5

    def test_nvls_rejects_bad_sizes(self):
        sim, cfg, net, ex = make_fabric(nvls=True)
        coll = NvlsCollective(net, ex.gpus)
        with pytest.raises(WorkloadError):
            coll.all_reduce(7, on_complete=lambda: None)


class TestReferenceModels:
    def test_monotone_in_size(self):
        cfg = dgx_h100_config()
        assert (ring_allreduce_time_ns(2 << 20, cfg) >
                ring_allreduce_time_ns(1 << 20, cfg))
        assert (nvls_allreduce_time_ns(2 << 20, cfg) >
                nvls_allreduce_time_ns(1 << 20, cfg))

    def test_nvls_faster_than_ring_at_scale(self):
        cfg = dgx_h100_config()
        n = 1 << 30
        assert (nvls_allreduce_time_ns(n, cfg) <
                ring_allreduce_time_ns(n, cfg))

    def test_rs_ag_symmetry(self):
        cfg = dgx_h100_config()
        assert (ring_reduce_scatter_time_ns(1 << 26, cfg) ==
                ring_all_gather_time_ns(1 << 26, cfg))

    def test_busbw_saturates_with_size(self):
        cfg = dgx_h100_config()
        small = nvls_allreduce_busbw_gbps(1 << 20, cfg)
        large = nvls_allreduce_busbw_gbps(8 << 30, cfg)
        assert large > small

    def test_invalid_inputs(self):
        cfg = dgx_h100_config()
        with pytest.raises(WorkloadError):
            ring_allreduce_time_ns(0, cfg)
