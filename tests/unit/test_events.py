"""Unit tests for the discrete-event engine."""

import pytest

from repro.common.events import Simulator
from repro.common.errors import SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, "late")
    sim.schedule(5.0, fired.append, "early")
    sim.schedule(7.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]
    assert sim.now == 10.0


def test_equal_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(3.0, fired.append, i)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_in_the_past_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(5.0, fired.append, "dead")
    sim.schedule(6.0, fired.append, "alive")
    ev.cancel()
    sim.run()
    assert fired == ["alive"]


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_events_scheduled_from_callbacks_run():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "a")
    sim.schedule(50.0, fired.append, "b")
    sim.run(until=10.0)
    assert fired == ["a"]
    assert sim.now == 10.0
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_when_queue_empty():
    sim = Simulator()
    sim.run(until=123.0)
    assert sim.now == 123.0


def test_run_max_events_limits_work():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(42.0, fired.append, "x")
    sim.run()
    assert sim.now == 42.0 and fired == ["x"]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_drain_cancelled_compacts_queue():
    sim = Simulator()
    evs = [sim.schedule(float(i), lambda: None) for i in range(10)]
    for ev in evs[:8]:
        ev.cancel()
    sim.drain_cancelled()
    assert sim.pending() == 2


def test_run_is_not_reentrant():
    sim = Simulator()

    def recurse():
        sim.run()

    sim.schedule(1.0, recurse)
    with pytest.raises(SimulationError):
        sim.run()
