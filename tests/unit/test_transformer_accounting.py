"""Unit tests for model-level accounting (params, flops, memory)."""

import pytest

from repro.common.errors import WorkloadError
from repro.llm.models import LLAMA_7B, MEGA_GPT_4B
from repro.llm.transformer import (
    activation_footprint, communication_summary, layer_comm_bytes,
    layer_flops_per_gpu, layer_parameters, model_parameters,
    sp_memory_saving)


def test_layer_parameters_llama():
    # 4*h^2 attention + 2*h*f FFN + norms.
    h, f = LLAMA_7B.hidden, LLAMA_7B.ffn_hidden
    assert layer_parameters(LLAMA_7B) == 4 * h * h + 2 * h * f + 4 * h


def test_model_parameters_order_of_magnitude():
    # LLaMA-7B's ~6.7B params are mostly layer weights; our accounting
    # (no embeddings, no gate projection) lands at ~5.1B.
    params = model_parameters(LLAMA_7B)
    assert 4.0e9 < params < 6.5e9


def test_flops_split_evenly_across_tp():
    f8 = layer_flops_per_gpu(LLAMA_7B, 8)
    f4 = layer_flops_per_gpu(LLAMA_7B, 4)
    # GEMM work halves when the TP degree doubles (vector/softmax shards
    # too), so 4-way is about twice 8-way.
    assert f4 / f8 == pytest.approx(2.0, rel=0.1)


def test_comm_bytes_sp_double_ops_same_volume_each():
    # SP has twice as many collectives, each over the same global tensor.
    assert layer_comm_bytes(LLAMA_7B, 8, "sp") == \
        2 * layer_comm_bytes(LLAMA_7B, 8, "basic")


class TestActivationMemory:
    def test_sp_shards_activations(self):
        fp = activation_footprint(LLAMA_7B, 8, "sp")
        assert fp.replicated_bytes == 0
        assert fp.sharded_bytes > 0

    def test_basic_replicates_activations(self):
        fp = activation_footprint(LLAMA_7B, 8, "basic")
        assert fp.replicated_bytes == 3 * LLAMA_7B.activation_bytes()

    def test_sp_saves_memory(self):
        """The paper's Section II-A claim: SP reduces activation memory."""
        saving = sp_memory_saving(LLAMA_7B, 8)
        assert saving > 0.5
        # The saving grows with the TP degree.
        assert sp_memory_saving(LLAMA_7B, 8) > sp_memory_saving(LLAMA_7B, 2)

    def test_tp1_no_saving_on_hidden_tensors(self):
        fp_sp = activation_footprint(MEGA_GPT_4B, 1, "sp")
        fp_basic = activation_footprint(MEGA_GPT_4B, 1, "basic")
        assert fp_sp.total_bytes == fp_basic.total_bytes

    def test_unknown_style_rejected(self):
        with pytest.raises(WorkloadError):
            activation_footprint(LLAMA_7B, 8, "zigzag")
        with pytest.raises(WorkloadError):
            activation_footprint(LLAMA_7B, 0, "sp")


def test_communication_summary_structure():
    out = communication_summary(LLAMA_7B, 8)
    assert set(out) == {"basic", "sp"}
    for style in out.values():
        assert style["flops_per_gpu"] > 0
        assert style["comm_bytes"] > 0
        assert style["activation_bytes_per_gpu"] > 0
    assert (out["sp"]["activation_bytes_per_gpu"] <
            out["basic"]["activation_bytes_per_gpu"])
