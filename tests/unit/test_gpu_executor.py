"""Unit tests for the GPU model and the TB-granular executor."""

import pytest

from repro.cais.compiler import (
    BlockIdx, Const, KernelIR, MemInstr, MemOpKind, compile_kernel,
    reset_group_ids)
from repro.cais.coordination import GroupSyncTable
from repro.cais.merge_unit import MergeUnit
from repro.common.config import dgx_h100_config, GpuSpec
from repro.common.errors import ConfigError, DeadlockError
from repro.common.events import Simulator
from repro.gpu.executor import Executor
from repro.gpu.kernels import KernelInstance, block_indices, total_tb_time_ns
from repro.gpu.remote_ops import RemoteOp, RemoteOpKind, Transport
from repro.interconnect.message import Address
from repro.interconnect.network import Network
from repro.metrics.merge_stats import MergeStats


def make_system(num_gpus=2, num_switches=1, num_sms=4, jitter=True,
                merge=False, sync_table=False, throttle_window=None,
                seed=3):
    sim = Simulator()
    cfg = dgx_h100_config(num_gpus=num_gpus, seed=seed)
    cfg = cfg.__class__(**{**cfg.__dict__, "num_gpus": num_gpus,
                           "num_switches": num_switches,
                           "gpu": GpuSpec(num_sms=num_sms)})
    net = Network(sim, cfg)
    stats = MergeStats()
    if merge:
        for sw in net.switches:
            sw.attach_engine(MergeUnit(stats, num_gpus,
                                       capacity_entries=None,
                                       timeout_ns=None,
                                       emit_credits=bool(throttle_window)))
    if sync_table:
        for sw in net.switches:
            sw.attach_engine(GroupSyncTable())
    ex = Executor(sim, cfg, net, jitter_enabled=jitter,
                  throttle_window=throttle_window)
    return sim, net, ex, stats


def test_block_indices_row_major():
    assert block_indices((2, 2)) == [(0, 0), (0, 1), (1, 0), (1, 1)]


def test_total_tb_time():
    k = KernelInstance("k", grid=(4,), tb_pre_ns=10.0, tb_post_ns=5.0)
    assert total_tb_time_ns(k) == pytest.approx(60.0)


def test_negative_tb_time_rejected():
    from repro.common.errors import WorkloadError
    with pytest.raises(WorkloadError):
        KernelInstance("k", grid=(1,), tb_pre_ns=-1.0)


class TestComputeOnly:
    def test_kernel_completes_on_all_gpus(self):
        sim, net, ex, _ = make_system(jitter=False)
        done = []
        k = KernelInstance("gemm", grid=(8,), tb_pre_ns=1000.0)
        ex.launch_kernel(k, on_complete=lambda: done.append(sim.now))
        ex.run()
        assert len(done) == 1
        assert ex.tbs_completed == 16

    def test_makespan_reflects_slot_waves(self):
        # 4 SMs * 2 slots = 8 slots; 16 TBs of 1000 ns -> 2 waves.
        sim, net, ex, _ = make_system(jitter=False)
        k = KernelInstance("gemm", grid=(16,), tb_pre_ns=1000.0)
        ex.launch_kernel(k)
        makespan = ex.run()
        assert makespan == pytest.approx(2000.0)

    def test_jitter_changes_makespan_deterministically(self):
        results = []
        for _ in range(2):
            sim, net, ex, _ = make_system(jitter=True, seed=11)
            k = KernelInstance("g", grid=(16,), tb_pre_ns=1000.0)
            ex.launch_kernel(k)
            results.append(ex.run())
        assert results[0] == results[1]
        sim, net, ex, _ = make_system(jitter=False, seed=11)
        k = KernelInstance("g", grid=(16,), tb_pre_ns=1000.0)
        ex.launch_kernel(k)
        assert ex.run() != results[0]

    def test_launch_overhead_delays_start(self):
        sim, net, ex, _ = make_system(jitter=False)
        k = KernelInstance("g", grid=(1,), tb_pre_ns=100.0,
                           launch_overhead_ns=2000.0)
        ex.launch_kernel(k)
        assert ex.run() == pytest.approx(2100.0)

    def test_kernel_chain_via_on_complete(self):
        sim, net, ex, _ = make_system(jitter=False)
        order = []
        k2 = KernelInstance("k2", grid=(2,), tb_pre_ns=50.0)
        k1 = KernelInstance("k1", grid=(2,), tb_pre_ns=100.0)

        def launch_second():
            order.append(("k1", sim.now))
            ex.launch_kernel(k2, on_complete=lambda:
                             order.append(("k2", sim.now)))

        ex.launch_kernel(k1, on_complete=launch_second)
        ex.run()
        assert [name for name, _ in order] == ["k1", "k2"]
        assert order[1][1] == pytest.approx(150.0)


class TestTokens:
    def test_when_all_fires_after_all_signals(self):
        sim, net, ex, _ = make_system()
        fired = []
        ex.when_all(["a", "b"], lambda: fired.append(True))
        ex.signal("a")
        assert not fired
        ex.signal("b")
        assert fired

    def test_signal_idempotent(self):
        sim, net, ex, _ = make_system()
        fired = []
        ex.signal("x")
        ex.signal("x")
        ex.when_all(["x"], lambda: fired.append(1))
        assert fired == [1]

    def test_tb_deps_gate_dispatch(self):
        sim, net, ex, _ = make_system(jitter=False)
        k = KernelInstance("dep", grid=(2,), tb_pre_ns=100.0,
                           tb_deps=lambda g, b: [("tile", b[0])])
        ex.launch_kernel(k)
        sim.schedule(5000.0, ex.signal, ("tile", 0))
        sim.schedule(6000.0, ex.signal, ("tile", 1))
        assert ex.run() == pytest.approx(6100.0)

    def test_missing_dep_raises_deadlock(self):
        sim, net, ex, _ = make_system(jitter=False)
        k = KernelInstance("dep", grid=(1,), tb_pre_ns=1.0,
                           tb_deps=lambda g, b: ["never"])
        ex.launch_kernel(k)
        with pytest.raises(DeadlockError):
            ex.run()


class TestRemotePhase:
    def _load_kernel(self, num_gpus, chunk=1024, transport=Transport.CAIS):
        def loads(gpu, bidx):
            home = (gpu + 1) % num_gpus
            return [RemoteOp(RemoteOpKind.LOAD,
                             Address(home, bidx[0] * chunk), chunk,
                             transport=transport,
                             expected=num_gpus - 1)]
        return KernelInstance("ag", grid=(4,), tb_pre_ns=100.0,
                              tb_post_ns=500.0, remote_loads=loads)

    def test_loads_block_post_compute(self):
        sim, net, ex, _ = make_system(jitter=False, merge=True)
        k = self._load_kernel(2)
        ex.launch_kernel(k)
        makespan = ex.run()
        # Must include at least one fabric round trip + HBM latency.
        assert makespan > 100.0 + 500.0 + 2 * 250.0 + 450.0

    def test_local_home_loads_skip_fabric(self):
        sim, net, ex, _ = make_system(jitter=False)

        def loads(gpu, bidx):
            return [RemoteOp(RemoteOpKind.LOAD, Address(gpu, 0), 128,
                             transport=Transport.DIRECT)]
        k = KernelInstance("local", grid=(2,), tb_pre_ns=100.0,
                           tb_post_ns=100.0, remote_loads=loads)
        ex.launch_kernel(k)
        assert ex.run() == pytest.approx(200.0)

    def test_chunk_cache_dedupes_same_address(self):
        sim, net, ex, _ = make_system(jitter=False, merge=True)

        def loads(gpu, bidx):
            # Every TB on GPU 0 reads the same remote chunk.
            if gpu != 0:
                return []
            return [RemoteOp(RemoteOpKind.LOAD, Address(1, 0), 2048,
                             expected=1)]
        k = KernelInstance("shared", grid=(4,), tb_pre_ns=10.0,
                           tb_post_ns=10.0, remote_loads=loads)
        ex.launch_kernel(k)
        ex.run()
        assert ex.gpus[0].memory.remote_fetches == 1
        assert ex.gpus[0].memory.cache_hits >= 0

    def test_direct_reduce_lands_at_home(self):
        sim, net, ex, _ = make_system(jitter=False)
        addr = Address(1, 0)
        done = []
        ex.gpus[1].memory.expect_reduction(addr, expected=1,
                                           on_complete=done.append)

        def reduces(gpu, bidx):
            if gpu != 0:
                return []
            return [RemoteOp(RemoteOpKind.REDUCE, addr, 1024,
                             transport=Transport.DIRECT, payload=2.5)]
        k = KernelInstance("rs", grid=(1,), tb_pre_ns=100.0,
                           remote_reduces=reduces)
        ex.launch_kernel(k)
        ex.run()
        assert done == [2.5]

    def test_cais_reduce_merges_at_switch(self):
        sim, net, ex, stats = make_system(num_gpus=4, jitter=False,
                                          merge=True)
        addr = Address(3, 0)
        done = []
        ex.gpus[3].memory.expect_reduction(
            addr, expected=4, on_complete=done.append)

        def reduces(gpu, bidx):
            return [RemoteOp(RemoteOpKind.REDUCE, addr, 1024,
                             transport=Transport.CAIS, expected=3,
                             payload=float(gpu))]
        k = KernelInstance("rs", grid=(1,), tb_pre_ns=100.0,
                           remote_reduces=reduces)
        ex.launch_kernel(k)
        ex.run()
        # 0+1+2 merged in-switch, +3 local contribution; total contributions
        # = 3 (merged store) + 1 (local).
        assert done and done[0] == pytest.approx(6.0)
        assert stats.sessions_completed == 1


class TestCoordination:
    def _grouped_kernel(self, num_gpus, sync_prelaunch=False,
                        sync_preaccess=False):
        reset_group_ids()
        ir = KernelIR("agk", grid=(4,), mem_instrs=(
            MemInstr(MemOpKind.LOAD, home_expr=Const(1),
                     offset_expr=BlockIdx(0) * 1024, chunk_bytes=1024),))
        compiled = compile_kernel(ir)

        def loads(gpu, bidx):
            if gpu == 1:
                return []
            return [RemoteOp(RemoteOpKind.LOAD, Address(1, bidx[0] * 1024),
                             1024, expected=num_gpus - 1)]
        return KernelInstance("agk", grid=(4,), tb_pre_ns=200.0,
                              tb_post_ns=200.0, remote_loads=loads,
                              compiled=compiled,
                              sync_prelaunch=sync_prelaunch,
                              sync_preaccess=sync_preaccess)

    def test_group_sync_aligns_and_completes(self):
        sim, net, ex, stats = make_system(num_gpus=4, jitter=True,
                                          merge=True, sync_table=True)
        k = self._grouped_kernel(4, sync_prelaunch=True, sync_preaccess=True)
        ex.launch_kernel(k)
        ex.run()
        assert ex.tbs_completed == 16
        # All load sessions fully merged: 4 addresses x 1 session each.
        assert stats.sessions_completed == 4

    def test_sync_reduces_request_spread(self):
        """With slot pressure and drift, coordination tightens the
        first-to-last request spread at the switch (Fig. 13b's effect)."""
        reset_group_ids()
        ir = KernelIR("agk", grid=(64,), mem_instrs=(
            MemInstr(MemOpKind.LOAD, home_expr=Const(1),
                     offset_expr=BlockIdx(0) * 1024, chunk_bytes=1024),))
        compiled = compile_kernel(ir)

        def loads(gpu, bidx):
            if gpu == 1:
                return []
            return [RemoteOp(RemoteOpKind.LOAD, Address(1, bidx[0] * 1024),
                             1024, expected=3)]

        waits = {}
        for coord in (False, True):
            sim, net, ex, stats = make_system(num_gpus=4, num_sms=2,
                                              jitter=True, merge=True,
                                              sync_table=True, seed=7)
            k = KernelInstance("agk", grid=(64,), tb_pre_ns=3000.0,
                               tb_post_ns=500.0, remote_loads=loads,
                               compiled=compiled, sync_prelaunch=coord,
                               sync_preaccess=coord)
            ex.launch_kernel(k)
            ex.run()
            waits[coord] = stats.average_wait_ns()
        assert waits[True] < waits[False]

    def test_throttle_credits_do_not_deadlock(self):
        sim, net, ex, stats = make_system(num_gpus=4, jitter=False,
                                          merge=True, throttle_window=2)

        def reduces(gpu, bidx):
            return [RemoteOp(RemoteOpKind.REDUCE, Address(3, b * 1024), 1024,
                             transport=Transport.CAIS, expected=3)
                    for b in range(bidx[0], bidx[0] + 1)]
        k = KernelInstance("rs", grid=(8,), tb_pre_ns=10.0,
                           remote_reduces=reduces)
        ex.launch_kernel(k)
        ex.run()
        assert ex.tbs_completed == 32
        assert stats.sessions_completed == 8


class TestPools:
    def test_pool_partition_limits_parallelism(self):
        sim, net, ex, _ = make_system(jitter=False)
        for gpu in ex.gpus:
            gpu.set_pools({"a": 2, "b": 6})
        ka = KernelInstance("ka", grid=(4,), tb_pre_ns=1000.0, pool="a")
        kb = KernelInstance("kb", grid=(6,), tb_pre_ns=1000.0, pool="b")
        ex.launch_kernel(ka)
        ex.launch_kernel(kb)
        makespan = ex.run()
        # Pool a: 4 TBs over 2 slots = 2 waves; pool b: 1 wave.
        assert makespan == pytest.approx(2000.0)

    def test_unknown_pool_rejected(self):
        sim, net, ex, _ = make_system(jitter=False)
        k = KernelInstance("k", grid=(1,), tb_pre_ns=1.0, pool="nope")
        ex.launch_kernel(k)
        with pytest.raises(ConfigError):
            ex.run()

    def test_overcommitted_pools_rejected(self):
        sim, net, ex, _ = make_system()
        with pytest.raises(ConfigError):
            ex.gpus[0].set_pools({"a": 1000})
