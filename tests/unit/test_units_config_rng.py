"""Unit tests for units, hardware config, and RNG streams."""

import pytest

from repro.common import config, units
from repro.common.errors import ConfigError
from repro.common.rng import RngPool


class TestUnits:
    def test_data_sizes(self):
        assert units.KiB(1) == 1024
        assert units.MiB(2) == 2 * 1024**2
        assert units.GiB(1) == 1024**3

    def test_time(self):
        assert units.us(1) == 1000.0
        assert units.ms(1) == 1e6
        assert units.seconds(1) == 1e9

    def test_bandwidth_identity(self):
        # 1 GB/s is 1 byte/ns by construction.
        assert units.gbps(450) == 450.0
        assert units.tbps(1.8) == 1800.0

    def test_transfer_time(self):
        # 900 bytes over 450 GB/s -> 2 ns.
        assert units.transfer_time_ns(900, 450.0) == pytest.approx(2.0)

    def test_transfer_time_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time_ns(100, 0.0)

    def test_cycle_conversions_roundtrip(self):
        t = units.cycles_to_ns(1800, 1.8)
        assert t == pytest.approx(1000.0)
        assert units.ns_to_cycles(t, 1.8) == pytest.approx(1800.0)

    def test_cycle_conversions_reject_bad_clock(self):
        with pytest.raises(ValueError):
            units.cycles_to_ns(1, 0)
        with pytest.raises(ValueError):
            units.ns_to_cycles(1, -1)


class TestConfig:
    def test_default_matches_paper_setup(self):
        cfg = config.dgx_h100_config()
        assert cfg.num_gpus == 8
        assert cfg.num_switches == 4
        # 40 KB per-port merge table => 320 entries of 128 B (paper IV-A).
        assert cfg.switch.merge_table_bytes() == 320 * 128 == 40 * 1024
        assert cfg.link.latency_ns == 250.0
        assert cfg.link.flit_bytes == 16

    def test_half_scale_sms(self):
        assert config.dgx_h100_config().gpu.num_sms == 66
        assert config.full_scale_config().gpu.num_sms == 132

    def test_per_gpu_bandwidth_aggregates_planes(self):
        cfg = config.dgx_h100_config()
        assert cfg.per_gpu_bandwidth_gbps() == pytest.approx(
            cfg.link.bandwidth_gbps * cfg.num_switches)

    def test_with_gpus_copies(self):
        cfg = config.dgx_h100_config()
        cfg16 = cfg.with_gpus(16)
        assert cfg16.num_gpus == 16 and cfg.num_gpus == 8

    def test_with_merge_entries(self):
        cfg = config.dgx_h100_config().with_merge_entries(8)
        assert cfg.switch.merge_table_entries == 8

    def test_rejects_too_few_gpus(self):
        with pytest.raises(ConfigError):
            config.SystemConfig(num_gpus=1)

    def test_rejects_zero_switches(self):
        with pytest.raises(ConfigError):
            config.SystemConfig(num_switches=0)

    def test_sustained_flops_positive(self):
        spec = config.GpuSpec()
        assert spec.sustained_tensor_flops_per_ns() > 0


class TestRng:
    def test_streams_reproducible(self):
        a = RngPool(42).stream("tb").random(5)
        b = RngPool(42).stream("tb").random(5)
        assert (a == b).all()

    def test_streams_independent_of_creation_order(self):
        p1 = RngPool(7)
        x1 = p1.stream("a").random()
        y1 = p1.stream("b").random()
        p2 = RngPool(7)
        y2 = p2.stream("b").random()
        x2 = p2.stream("a").random()
        assert x1 == x2 and y1 == y2

    def test_distinct_names_give_distinct_streams(self):
        p = RngPool(0)
        assert p.stream("a").random() != p.stream("b").random()

    def test_jitter_bounds(self):
        p = RngPool(3)
        for _ in range(200):
            f = p.jitter("j", 0.1)
            assert 0.9 <= f <= 1.1

    def test_zero_jitter_is_exactly_one(self):
        assert RngPool(1).jitter("j", 0.0) == 1.0

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngPool(-1)
