"""Unit tests for model configs, layer graphs, and tiling."""

import pytest

from repro.common.config import GpuSpec
from repro.common.errors import ConfigError, WorkloadError
from repro.llm.graph import CommKind, GemmShape, Graph, LogicalOp, OpKind
from repro.llm.models import (
    LLAMA_7B, LLAMA_FULL, MEGA_GPT_4B, MEGA_GPT_8B, TABLE_I, by_name)
from repro.llm.tiling import (
    ActivationLayout, TilingConfig, ag_gemm_kernel, compute_kernel,
    gemm_rs_kernel, gemm_tile_time_ns, ln_kernel, make_layout,
    reset_tensor_ids, rs_tokens, vector_tb_time_ns)
from repro.llm.tp import (
    SUBLAYERS, basic_backward_layer, basic_forward_layer,
    sp_backward_layer, sp_forward_layer, sublayer_graph, training_graphs)
from repro.gpu.remote_ops import RemoteOpKind, Transport


class TestModels:
    def test_table_i_values(self):
        assert MEGA_GPT_4B.hidden == 2048 and MEGA_GPT_4B.batch == 16
        assert MEGA_GPT_8B.ffn_hidden == 12288 and MEGA_GPT_8B.heads == 32
        assert LLAMA_7B.seq_len == 3072 and LLAMA_7B.batch == 3
        assert set(TABLE_I) == {"Mega-GPT-4B", "Mega-GPT-8B", "LLaMA-7B"}

    def test_full_scale_is_double_llama(self):
        assert LLAMA_FULL.hidden == 2 * LLAMA_7B.hidden
        assert LLAMA_FULL.ffn_hidden == 2 * LLAMA_7B.ffn_hidden

    def test_lookup(self):
        assert by_name("LLaMA-7B") is LLAMA_7B
        with pytest.raises(ConfigError):
            by_name("GPT-5")

    def test_activation_bytes(self):
        # 3072*3 tokens x 4096 hidden x 2 bytes.
        assert LLAMA_7B.activation_bytes() == 3072 * 3 * 4096 * 2

    def test_scaled_preserves_dims(self):
        s = LLAMA_7B.scaled(0.25)
        assert s.hidden == LLAMA_7B.hidden
        assert s.seq_len == 768
        with pytest.raises(ConfigError):
            LLAMA_7B.scaled(0.0)

    def test_invalid_model_rejected(self):
        from repro.llm.models import ModelConfig
        with pytest.raises(ConfigError):
            ModelConfig(name="bad", hidden=100, ffn_hidden=0, heads=3,
                        seq_len=1, batch=1)


class TestGraph:
    def test_duplicate_names_rejected(self):
        g = Graph("t")
        g.add(LogicalOp("a", OpKind.VECTOR, elements=1))
        with pytest.raises(WorkloadError):
            g.add(LogicalOp("a", OpKind.VECTOR, elements=1))

    def test_unknown_dep_rejected(self):
        g = Graph("t")
        with pytest.raises(WorkloadError):
            g.add(LogicalOp("b", OpKind.VECTOR, elements=1, deps=("a",)))

    def test_topo_order_is_valid(self):
        g = sp_forward_layer(LLAMA_7B, 8)
        seen = set()
        for op in g.topo_order():
            assert all(d in seen for d in op.deps)
            seen.add(op.name)

    def test_gemm_needs_shape(self):
        with pytest.raises(WorkloadError):
            LogicalOp("g", OpKind.GEMM)

    def test_comm_needs_bytes(self):
        with pytest.raises(WorkloadError):
            LogicalOp("c", OpKind.COMM, comm=CommKind.ALL_REDUCE,
                      comm_bytes=0)

    def test_flops_accounting(self):
        shape = GemmShape(128, 64, 32)
        assert shape.flops() == 2 * 128 * 64 * 32
        op = LogicalOp("g", OpKind.GEMM, gemm=shape)
        assert op.flops() == shape.flops()


class TestTpGraphs:
    def test_sp_forward_has_rs_and_ag(self):
        g = sp_forward_layer(LLAMA_7B, 8)
        kinds = [op.comm for op in g.comm_ops()]
        assert kinds.count(CommKind.ALL_GATHER) == 2
        assert kinds.count(CommKind.REDUCE_SCATTER) == 2

    def test_basic_forward_has_two_allreduce(self):
        g = basic_forward_layer(LLAMA_7B, 8)
        kinds = [op.comm for op in g.comm_ops()]
        assert kinds == [CommKind.ALL_REDUCE, CommKind.ALL_REDUCE]

    def test_sp_and_basic_same_gemm_flops(self):
        """AR = RS + AG is mathematically equivalent; fwd GEMM work equal."""
        sp = sp_forward_layer(LLAMA_7B, 8)
        basic = basic_forward_layer(LLAMA_7B, 8)
        sp_gemm = sum(op.flops() for op in sp.ops()
                      if op.kind is OpKind.GEMM)
        basic_gemm = sum(op.flops() for op in basic.ops()
                         if op.kind is OpKind.GEMM)
        assert sp_gemm == basic_gemm

    def test_backward_has_double_gemm_flops(self):
        fwd = sp_forward_layer(LLAMA_7B, 8)
        bwd = sp_backward_layer(LLAMA_7B, 8)
        fwd_g = sum(op.flops() for op in fwd.ops()
                    if op.kind is OpKind.GEMM)
        bwd_g = sum(op.flops() for op in bwd.ops()
                    if op.kind is OpKind.GEMM)
        assert bwd_g == pytest.approx(2 * fwd_g, rel=0.01)

    def test_backward_mirrors_comm_kinds(self):
        bwd = sp_backward_layer(LLAMA_7B, 8)
        kinds = [op.comm for op in bwd.comm_ops()]
        assert kinds.count(CommKind.ALL_GATHER) == 2
        assert kinds.count(CommKind.REDUCE_SCATTER) == 2

    def test_comm_volume_equal_sp_vs_basic(self):
        # AR moves 2x per ring step but SP has twice the ops; logical global
        # bytes per op are equal here.
        sp = sp_forward_layer(LLAMA_7B, 8)
        basic = basic_forward_layer(LLAMA_7B, 8)
        assert sp.total_comm_bytes() == 2 * basic.total_comm_bytes()

    def test_tp_must_divide(self):
        with pytest.raises(WorkloadError):
            sp_forward_layer(LLAMA_7B, 7)
        with pytest.raises(WorkloadError):
            sp_forward_layer(LLAMA_7B, 1)

    def test_training_graphs(self):
        fwd, bwd = training_graphs(LLAMA_7B, 8, style="sp")
        assert "ffn1" in fwd and "ffn1_dgrad" in bwd
        with pytest.raises(WorkloadError):
            training_graphs(LLAMA_7B, 8, style="zigzag")

    @pytest.mark.parametrize("which", SUBLAYERS)
    def test_sublayer_structure(self, which):
        g = sublayer_graph(LLAMA_7B, 8, which)
        names = [op.name for op in g.topo_order()]
        assert names == ["gemm1", "rs", "ln", "ag", "gemm2"]
        assert g["rs"].comm is CommKind.REDUCE_SCATTER
        assert g["ag"].comm is CommKind.ALL_GATHER

    def test_unknown_sublayer(self):
        with pytest.raises(WorkloadError):
            sublayer_graph(LLAMA_7B, 8, "L9")


class TestTiling:
    def setup_method(self):
        reset_tensor_ids()
        self.spec = GpuSpec()
        self.tiling = TilingConfig()

    def test_gemm_tile_time_scales_with_k(self):
        assert (gemm_tile_time_ns(128, 128, 4096, self.spec) ==
                pytest.approx(8 * gemm_tile_time_ns(128, 128, 512,
                                                    self.spec)))

    def test_vector_time_positive(self):
        assert vector_tb_time_ns(1024, 8.0, self.spec) > 0

    def test_layout_addressing(self):
        layout = make_layout(rows=1024, row_bytes=8192, tp=8)
        assert layout.num_blocks == 8
        assert layout.blocks_per_shard == 1
        assert layout.home_of_block(0) == 0 and layout.home_of_block(7) == 7
        a0 = layout.address(3, 0, 65536)
        a1 = layout.address(3, 1, 65536)
        assert a0.home_gpu == 3 and a1.offset - a0.offset == 65536

    def test_layouts_get_distinct_address_spaces(self):
        l1 = make_layout(rows=1024, row_bytes=8192, tp=8)
        l2 = make_layout(rows=1024, row_bytes=8192, tp=8)
        assert l1.address(0, 0, 1).offset != l2.address(0, 0, 1).offset

    def test_layout_supports_ragged_sharding(self):
        # 1000 rows / 128 = 8 blocks over 3 GPUs: shards of 3, 3, 2.
        layout = ActivationLayout(tensor_id=1, rows=1000, row_bytes=2, tp=3)
        assert layout.num_blocks == 8
        assert [layout.shard_blocks(g) for g in range(3)] == [3, 3, 2]
        assert [layout.shard_start(g) for g in range(3)] == [0, 3, 6]
        homes = [layout.home_of_block(mb) for mb in range(8)]
        assert homes == [0, 0, 0, 1, 1, 1, 2, 2]

    def test_layout_rejects_too_few_blocks(self):
        with pytest.raises(WorkloadError):
            ActivationLayout(tensor_id=1, rows=100, row_bytes=2, tp=8)

    def test_compute_kernel_gemm_grid(self):
        op = LogicalOp("g", OpKind.GEMM, gemm=GemmShape(1024, 512, 4096))
        k = compute_kernel(op, self.spec, self.tiling)
        assert k.grid == (8, 4)
        assert k.tb_pre_ns > 0 and k.tb_post_ns == 0

    def test_compute_kernel_vector_grid(self):
        op = LogicalOp("v", OpKind.VECTOR, elements=1 << 20)
        k = compute_kernel(op, self.spec, self.tiling)
        assert k.grid == (4,)

    def test_comm_op_cannot_lower_as_compute(self):
        op = LogicalOp("c", OpKind.COMM, comm=CommKind.ALL_REDUCE,
                       comm_bytes=1024)
        with pytest.raises(WorkloadError):
            compute_kernel(op, self.spec, self.tiling)

    def test_gemm_rs_kernel_remote_ops(self):
        layout = make_layout(rows=1024, row_bytes=1024 * 2, tp=8)
        op = LogicalOp("g1", OpKind.GEMM, gemm=GemmShape(1024, 1024, 512))
        k = gemm_rs_kernel(op, layout, self.spec, self.tiling, tp=8)
        assert k.grid == (8, 8)
        ops = k.remote_reduces(2, (3, 1))
        # Tile = 32 KiB packetized into 8 KiB reduction sub-chunks.
        assert len(ops) == 4
        assert all(o.kind is RemoteOpKind.REDUCE for o in ops)
        assert all(o.address.home_gpu == layout.home_of_block(3)
                   for o in ops)
        assert all(o.expected == 7 for o in ops)
        offsets = [o.address.offset for o in ops]
        assert offsets == sorted(offsets)
        assert offsets[1] - offsets[0] == ops[0].chunk_bytes
        # Same block on another GPU -> identical addresses (mergeable).
        assert [o.address for o in k.remote_reduces(5, (3, 1))] == \
            [o.address for o in ops]
        assert k.compiled is not None and k.compiled.uses_cais

    def test_ag_gemm_kernel_loads_skip_home(self):
        layout = make_layout(rows=1024, row_bytes=2048, tp=8)
        op = LogicalOp("g2", OpKind.GEMM, gemm=GemmShape(1024, 512, 1024))
        k = ag_gemm_kernel(op, layout, self.spec, self.tiling, tp=8)
        home = layout.home_of_block(0)
        assert k.remote_loads(home, (0, 0)) == []
        other = (home + 1) % 8
        loads = k.remote_loads(other, (0, 0))
        assert loads and all(op_.kind is RemoteOpKind.LOAD for op_ in loads)
        assert all(op_.address.home_gpu == home for op_ in loads)
        # Post-heavy timing: compute happens after the gather.
        assert k.tb_pre_ns == 0.0 and k.tb_post_ns > 0

    def test_ag_gemm_deps_reference_ln_tokens(self):
        layout = make_layout(rows=1024, row_bytes=2048, tp=8)
        op = LogicalOp("g2", OpKind.GEMM, gemm=GemmShape(1024, 512, 1024))
        k = ag_gemm_kernel(op, layout, self.spec, self.tiling, tp=8)
        assert k.tb_deps(0, (5, 2)) == [("ln", layout.tensor_id, 5)]

    def test_ln_kernel_deps_cover_row_tiles(self):
        layout = make_layout(rows=1024, row_bytes=2048, tp=8)
        out = make_layout(rows=1024, row_bytes=2048, tp=8)
        op = LogicalOp("ln", OpKind.VECTOR, elements=1024 * 1024)
        k = ln_kernel(op, layout, out, num_col_tiles=4, spec=self.spec,
                      tiling=self.tiling)
        assert k.grid == (1,)
        deps = k.tb_deps(3, (0,))
        assert deps == rs_tokens(layout, 4, 3)

    def test_direct_transport_is_not_mergeable(self):
        layout = make_layout(rows=1024, row_bytes=2048, tp=8)
        op = LogicalOp("g1", OpKind.GEMM, gemm=GemmShape(1024, 1024, 512))
        k = gemm_rs_kernel(op, layout, self.spec, self.tiling, tp=8,
                           transport=Transport.DIRECT)
        assert not k.remote_reduces(0, (1, 0))[0].mergeable
