"""Unit tests for the fault-injection subsystem (repro.faults).

Covers the determinism and nesting guarantees of the seeded schedule,
the bounded-backoff retransmission protocol, watchdog stall detection,
config validation of the fault model, and the NVLS-failure fallback
accounting.
"""

from dataclasses import replace

import pytest

from repro.common.config import (ConfigError, FaultSpec, JitterSpec,
                                 dgx_h100_config)
from repro.common.errors import DeadlockError
from repro.common.events import Simulator
from repro.faults import (FaultCounters, FaultKind, FaultSchedule,
                          FaultState, Retransmitter, RetryPolicy, Watchdog,
                          WINDOWED_KINDS)


def faulted_config(**kwargs):
    spec = FaultSpec(enabled=True, **kwargs)
    return dgx_h100_config().with_faults(spec)


# ----------------------------------------------------------------------
# Schedule determinism and monotone nesting
# ----------------------------------------------------------------------
def test_schedule_is_deterministic():
    cfg = faulted_config(intensity=0.7, fault_seed=3)
    a = FaultSchedule.build(cfg)
    b = FaultSchedule.build(cfg)
    assert a.events == b.events
    assert len(a) > 0


def test_schedule_differs_across_fault_seeds():
    a = FaultSchedule.build(faulted_config(fault_seed=0))
    b = FaultSchedule.build(faulted_config(fault_seed=1))
    assert a.events != b.events


def test_disabled_spec_yields_empty_schedule():
    sched = FaultSchedule.build(dgx_h100_config())
    assert len(sched) == 0
    assert sched.drop_probability == 0.0


def test_fault_sets_nest_across_intensities():
    """Every fault present at a lower intensity must appear at every
    higher one, at the same onset (only severity/duration may change)."""
    onsets = {}
    for intensity in (0.25, 0.5, 0.75, 1.0):
        sched = FaultSchedule.build(faulted_config(intensity=intensity))
        onsets[intensity] = {(ev.kind, ev.target): ev.time_ns
                             for ev in sched.events}
    grid = sorted(onsets)
    for lo, hi in zip(grid, grid[1:]):
        assert set(onsets[lo]) <= set(onsets[hi]), (lo, hi)
        for key, onset in onsets[lo].items():
            assert onsets[hi][key] == onset
    assert len(onsets[1.0]) > len(onsets[0.25])


def test_window_duration_grows_with_intensity():
    lo = FaultSchedule.build(faulted_config(intensity=0.5))
    hi = FaultSchedule.build(faulted_config(intensity=1.0))
    lo_by_key = {(ev.kind, ev.target): ev for ev in lo.events
                 if ev.kind in WINDOWED_KINDS}
    for ev in hi.events:
        shared = lo_by_key.get((ev.kind, ev.target))
        if shared is not None:
            assert ev.duration_ns > shared.duration_ns


def test_plane_failures_spare_at_least_one_plane():
    cfg = faulted_config(plane_fail_rate=1.0, intensity=1.0)
    sched = FaultSchedule.build(cfg)
    planes = sched.by_kind(FaultKind.PLANE_FAIL)
    assert 0 < len(planes) <= cfg.num_switches - 1


# ----------------------------------------------------------------------
# Retry policy and retransmitter
# ----------------------------------------------------------------------
def test_backoff_is_exponential_and_bounded():
    policy = RetryPolicy(ack_timeout_ns=100.0, max_retries=10,
                         backoff_base=2.0, max_backoff_ns=1000.0)
    timeouts = [policy.timeout_for(a) for a in range(12)]
    assert timeouts[0] == 100.0
    assert timeouts[1] == 200.0
    assert timeouts[2] == 400.0
    assert all(t <= 1000.0 for t in timeouts)
    assert timeouts == sorted(timeouts)          # never shrinks
    assert timeouts[-1] == 1000.0                # cap is reached


def test_retransmitter_resends_then_exhausts():
    sim = Simulator()
    policy = RetryPolicy(ack_timeout_ns=10.0, max_retries=3,
                         backoff_base=2.0, max_backoff_ns=1e6)
    counters = FaultCounters()
    rtx = Retransmitter(sim, policy, counters)
    attempts = []
    rtx.track(("k",), attempts.append)
    sim.run()
    assert attempts == [1, 2, 3]                 # bounded by max_retries
    assert counters.get("retries") == 3
    assert counters.get("retry_exhausted") == 1
    assert rtx.outstanding() == 0


def test_ack_cancels_retransmission():
    sim = Simulator()
    counters = FaultCounters()
    rtx = Retransmitter(sim, RetryPolicy(ack_timeout_ns=10.0), counters)
    attempts = []
    rtx.track(("k",), attempts.append)
    sim.schedule(5.0, lambda: rtx.ack(("k",)))
    sim.run()
    assert attempts == []
    assert counters.get("retries") == 0


def test_timeout_scale_stretches_deadlines():
    sim = Simulator()
    counters = FaultCounters()
    rtx = Retransmitter(sim, RetryPolicy(ack_timeout_ns=10.0,
                                         max_retries=1), counters)
    fired = []
    rtx.track(("slow",), lambda a: fired.append(sim.now), timeout_scale=4.0)
    sim.run()
    assert fired and fired[0] == pytest.approx(40.0)


def test_receiver_dedup():
    sim = Simulator()
    counters = FaultCounters()
    rtx = Retransmitter(sim, RetryPolicy(), counters)
    assert rtx.accept(("rx", 1))
    assert not rtx.accept(("rx", 1))
    assert counters.get("duplicates_discarded") == 1


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
def test_watchdog_reports_outstanding_work_on_stall():
    sim = Simulator()
    sim.register_work_reporter(lambda: "gpu 0: 7 busy TBs")
    dog = Watchdog(sim, interval_ns=100.0, strikes=3,
                   counters=FaultCounters())
    dog.arm()
    sim.schedule(1e9, lambda: None)              # far-future event: queue
    with pytest.raises(DeadlockError) as err:    # never drains, no progress
        sim.run()
    assert "gpu 0: 7 busy TBs" in str(err.value)


def test_watchdog_extra_reporters_extend_trip_report():
    """Workload-level reporters (the serving loop's request queues) ride
    along with the simulator's own outstanding-work report."""
    sim = Simulator()
    sim.register_work_reporter(lambda: "gpu 0: 7 busy TBs")
    dog = Watchdog(sim, interval_ns=100.0, strikes=3,
                   counters=FaultCounters())
    dog.add_reporter(lambda: "serving[iter=3 running=2]")
    dog.add_reporter(lambda: "")                 # empty lines are elided
    dog.arm()
    sim.schedule(1e9, lambda: None)
    with pytest.raises(DeadlockError) as err:
        sim.run()
    assert "gpu 0: 7 busy TBs" in str(err.value)
    assert "serving[iter=3 running=2]" in str(err.value)


def test_serving_watchdog_reports_request_queues():
    """End to end: a total drop storm stalls a live serving run, and the
    watchdog trip must name the batcher's queues (which requests were
    running/waiting and how far along), not just outstanding ops."""
    from repro.llm.models import ModelConfig
    from repro.llm.serving import ServingSpec, simulate_serving
    from repro.llm.tiling import TilingConfig
    from repro.systems import make_system

    tiny = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                       seq_len=64, batch=4, layers=4)
    spec = ServingSpec(model="tiny", seed=0, arrival_rate_rps=100_000.0,
                       horizon_ms=0.05, prompt_min=8, prompt_max=24,
                       output_min=1, output_max=3, max_batch_requests=4)
    # Every droppable message is lost and the first ack deadline sits far
    # past the watchdog's patience: progress stops with work outstanding.
    cfg = dgx_h100_config(num_gpus=4, seed=1).with_faults(FaultSpec(
        enabled=True, intensity=1.0, msg_drop_rate=1.0,
        ack_timeout_ns=1e9, max_backoff_ns=1e9,
        watchdog_interval_ns=1e6, watchdog_strikes=3))
    system = make_system("CAIS", cfg,
                         tiling=TilingConfig(tile=32, chunk_bytes=32768,
                                             red_chunk_bytes=8192),
                         jitter=False)
    with pytest.raises(DeadlockError) as err:
        simulate_serving(system, spec, model=tiny, style="sp")
    report = str(err.value)
    assert "serving[iter=" in report
    assert "running=" in report and "waiting=" in report


def test_watchdog_disarm_lets_queue_drain():
    sim = Simulator()
    dog = Watchdog(sim, interval_ns=100.0, strikes=3,
                   counters=FaultCounters())
    dog.arm()
    sim.schedule(50.0, dog.disarm)
    sim.run()                                    # must terminate quietly
    assert sim.pending() == 0


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("field,value", [
    ("intensity", 1.5),
    ("msg_drop_rate", -0.1),
    ("nvls_fail_rate", 2.0),
    ("link_degrade_floor", 0.0),
    ("straggler_slowdown", 0.5),
    ("ack_timeout_ns", 0.0),
    ("horizon_ns", -1.0),
])
def test_fault_spec_validation_names_offending_field(field, value):
    with pytest.raises(ConfigError) as err:
        FaultSpec(**{field: value})
    assert f"FaultSpec.{field}" in str(err.value)


def test_fault_window_must_fit_horizon():
    with pytest.raises(ConfigError) as err:
        FaultSpec(fault_window_ns=5e6, horizon_ns=2e6)
    assert "FaultSpec.fault_window_ns" in str(err.value)


@pytest.mark.parametrize("field,value", [
    ("tb_jitter", 1.0),
    ("gpu_skew_ns", -1.0),
    ("dispatch_shuffle_window", 0),
])
def test_jitter_spec_validation_names_offending_field(field, value):
    with pytest.raises(ConfigError) as err:
        JitterSpec(**{field: value})
    assert f"JitterSpec.{field}" in str(err.value)


# ----------------------------------------------------------------------
# NVLS failure fallback accounting
# ----------------------------------------------------------------------
def test_nvls_failure_notifies_listeners_once_per_unit():
    sim = Simulator()
    state = FaultState(sim, FaultSpec(enabled=True))
    fired = []
    state.on_nvls_fault(lambda: fired.append(sim.now))
    assert not state.nvls_faulted
    state.nvls_unit_failed(0)
    state.nvls_unit_failed(2)
    assert state.nvls_faulted
    assert len(fired) == 2
    assert state.counters.get("nvls_unit_failures") == 2


# ----------------------------------------------------------------------
# Degraded-capacity accounting (workload-level replanning signal)
# ----------------------------------------------------------------------
def test_capacity_factor_tracks_plane_deaths():
    sim = Simulator()
    state = FaultState(sim, FaultSpec(enabled=True))
    state.planes_total = 4
    seen = []
    state.on_degradation(lambda: seen.append(state.capacity_factor()))
    assert state.capacity_factor() == 1.0
    state.plane_failed(1)
    state.plane_failed(3)
    assert state.capacity_factor() == 0.5
    assert seen == [0.75, 0.5]
    assert state.counters.get("plane_failures") == 2


def test_capacity_factor_caps_at_nvls_fallback():
    from repro.faults.injector import NVLS_FALLBACK_CAPACITY

    sim = Simulator()
    state = FaultState(sim, FaultSpec(enabled=True))
    state.planes_total = 4
    state.nvls_unit_failed(0)
    # One dead compute unit does not remove a plane, but the ring
    # fallback caps effective collective capacity.
    assert state.capacity_factor() == NVLS_FALLBACK_CAPACITY
    state.plane_failed(0)
    state.plane_failed(1)
    state.plane_failed(2)
    # Plane losses below the cap win once they are the tighter bound.
    assert state.capacity_factor() == 0.25
