"""Unit tests for messages and addresses."""

import pytest

from repro.interconnect.message import (
    Address, CONTROL_BYTES, Message, Op, TrafficClass, gpu_node, switch_node)


def test_node_helpers():
    assert gpu_node(3) == ("gpu", 3)
    assert switch_node(1) == ("sw", 1)


def test_address_validation():
    Address(0, 0)
    with pytest.raises(ValueError):
        Address(-1, 0)
    with pytest.raises(ValueError):
        Address(0, -4)


def test_control_message_wire_bytes_is_one_flit():
    msg = Message(Op.SYNC_REQ, gpu_node(0), switch_node(0))
    assert msg.wire_bytes() == CONTROL_BYTES


def test_data_message_charges_flit_header_per_packet():
    # 256 B payload = 2 packets of 128 B, each with a 16 B flit header.
    msg = Message(Op.STORE, gpu_node(0), gpu_node(1), payload_bytes=256)
    assert msg.wire_bytes() == 256 + 2 * 16


def test_partial_packet_still_charges_header():
    msg = Message(Op.STORE, gpu_node(0), gpu_node(1), payload_bytes=130)
    assert msg.wire_bytes() == 130 + 2 * 16


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        Message(Op.STORE, gpu_node(0), gpu_node(1), payload_bytes=-1)


@pytest.mark.parametrize("op,expected", [
    (Op.LOAD_REQ, TrafficClass.LOAD),
    (Op.LD_CAIS_REQ, TrafficClass.LOAD),
    (Op.LD_CAIS_RESP, TrafficClass.LOAD),
    (Op.MULTIMEM_LD_REDUCE_REQ, TrafficClass.LOAD),
    (Op.RED_CAIS, TrafficClass.REDUCTION),
    (Op.MULTIMEM_RED, TrafficClass.REDUCTION),
    (Op.MULTIMEM_ST, TrafficClass.REDUCTION),
    (Op.STORE, TrafficClass.REDUCTION),
    (Op.SYNC_REQ, TrafficClass.CONTROL),
    (Op.CREDIT, TrafficClass.CONTROL),
])
def test_traffic_class_assignment(op, expected):
    msg = Message(op, gpu_node(0), switch_node(0))
    assert msg.traffic_class is expected


def test_message_ids_unique():
    a = Message(Op.STORE, gpu_node(0), gpu_node(1))
    b = Message(Op.STORE, gpu_node(0), gpu_node(1))
    assert a.msg_id != b.msg_id


def test_reply_swaps_endpoints_and_keeps_address():
    addr = Address(2, 4096)
    req = Message(Op.LD_CAIS_REQ, gpu_node(0), gpu_node(2), address=addr,
                  group_id=7)
    resp = req.reply(Op.LD_CAIS_RESP, payload_bytes=1024)
    assert resp.src == gpu_node(2)
    assert resp.dst == gpu_node(0)
    assert resp.address == addr
    assert resp.group_id == 7
    assert resp.payload_bytes == 1024
