"""Unit tests for GPU dispatch machinery: parking, pacing, fair share,
link backpressure, and slot-occupancy accounting."""

import numpy as np
import pytest

from repro.common.config import LinkSpec, dgx_h100_config, GpuSpec
from repro.common.events import Simulator
from repro.gpu.scheduler import (
    FairSharePolicy, FifoPolicy, KeyedPolicy, ShuffledPolicy)
from repro.interconnect.link import Link
from repro.interconnect.message import Message, Op, TrafficClass, gpu_node


class TestPolicies:
    class FakeTB:
        def __init__(self, kid):
            class K:
                kernel_id = kid
            self.kernel = K()

    def test_fifo(self):
        q = [1, 2, 3]
        assert FifoPolicy().pick(q) == 1
        assert q == [2, 3]

    def test_shuffled_window_bounds_choice(self):
        rng = np.random.default_rng(0)
        policy = ShuffledPolicy(window=2, rng=rng)
        q = list(range(10))
        first = policy.pick(q)
        assert first in (0, 1)

    def test_shuffled_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ShuffledPolicy(window=0, rng=np.random.default_rng(0))

    def test_keyed_picks_minimum(self):
        policy = KeyedPolicy(key=lambda x: -x)
        q = [1, 5, 3]
        assert policy.pick(q) == 5

    def test_fair_share_prefers_least_running_kernel(self):
        class FakeGpu:
            running_per_kernel = {1: 5, 2: 0}
        policy = FairSharePolicy(FakeGpu(), window=8,
                                 rng=np.random.default_rng(0))
        q = [self.FakeTB(1), self.FakeTB(1), self.FakeTB(2)]
        picked = policy.pick(q)
        assert picked.kernel.kernel_id == 2

    def test_fair_share_tie_breaks_within_window(self):
        class FakeGpu:
            running_per_kernel = {}
        policy = FairSharePolicy(FakeGpu(), window=4,
                                 rng=np.random.default_rng(1))
        q = [self.FakeTB(i) for i in range(8)]
        picked = policy.pick(q)
        assert picked.kernel.kernel_id < 4


class TestLinkBackpressure:
    def make_link(self, traffic_control=True, bandwidth=1.0):
        sim = Simulator()
        link = Link(sim, LinkSpec(bandwidth_gbps=bandwidth, latency_ns=0.0),
                    "bp", traffic_control=traffic_control)
        link.deliver = lambda msg: None
        return sim, link

    def data(self, op=Op.RED_CAIS, nbytes=128):
        return Message(op, gpu_node(0), gpu_node(1), payload_bytes=nbytes)

    def test_wait_for_room_immediate_when_below(self):
        sim, link = self.make_link()
        fired = []
        link.wait_for_room(TrafficClass.REDUCTION, 2, lambda: fired.append(1))
        assert fired == [1]

    def test_wait_for_room_fires_after_drain(self):
        sim, link = self.make_link()
        for _ in range(4):
            link.send(self.data())
        fired = []
        link.wait_for_room(TrafficClass.REDUCTION, 2, lambda: fired.append(1))
        assert not fired
        sim.run()
        assert fired == [1]

    def test_waiters_fifo_order(self):
        sim, link = self.make_link()
        for _ in range(5):
            link.send(self.data())
        fired = []
        link.wait_for_room(TrafficClass.REDUCTION, 3, lambda: fired.append("a"))
        link.wait_for_room(TrafficClass.REDUCTION, 3, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b"]

    def test_per_class_queue_depth(self):
        sim, link = self.make_link()
        link.send(self.data(Op.RED_CAIS))
        link.send(self.data(Op.RED_CAIS))       # one serializing, one queued
        link.send(self.data(Op.LD_CAIS_RESP))
        assert link.queue_depth(TrafficClass.REDUCTION) == 1
        assert link.queue_depth(TrafficClass.LOAD) == 1
        assert link.queue_depth() == 2

    def test_invalid_limit(self):
        from repro.common.errors import SimulationError
        sim, link = self.make_link()
        with pytest.raises(SimulationError):
            link.wait_for_room(TrafficClass.REDUCTION, 0, lambda: None)


class TestSlotOccupancy:
    def test_busy_integral_tracks_slot_usage(self):
        from repro.gpu.executor import Executor
        from repro.gpu.kernels import KernelInstance
        from repro.interconnect.network import Network
        sim = Simulator()
        cfg = dgx_h100_config(num_gpus=2)
        cfg = cfg.__class__(**{**cfg.__dict__,
                               "gpu": GpuSpec(num_sms=2)})
        net = Network(sim, cfg)
        ex = Executor(sim, cfg, net, jitter_enabled=False)
        # 4 slots; 4 TBs of 1000 ns => fully busy for 1000 ns.
        k = KernelInstance("k", grid=(4,), tb_pre_ns=1000.0)
        ex.launch_kernel(k)
        makespan = ex.run()
        for gpu in ex.gpus:
            assert gpu.utilization(makespan) == pytest.approx(1.0)

    def test_half_occupancy(self):
        from repro.gpu.executor import Executor
        from repro.gpu.kernels import KernelInstance
        from repro.interconnect.network import Network
        sim = Simulator()
        cfg = dgx_h100_config(num_gpus=2)
        cfg = cfg.__class__(**{**cfg.__dict__, "gpu": GpuSpec(num_sms=2)})
        net = Network(sim, cfg)
        ex = Executor(sim, cfg, net, jitter_enabled=False)
        k = KernelInstance("k", grid=(2,), tb_pre_ns=1000.0)  # 2 of 4 slots
        ex.launch_kernel(k)
        makespan = ex.run()
        assert ex.gpus[0].utilization(makespan) == pytest.approx(0.5)

    def test_zero_makespan(self):
        from repro.gpu.gpu import Gpu
        sim = Simulator()
        cfg = dgx_h100_config(num_gpus=2)
        net = __import__("repro.interconnect.network",
                         fromlist=["Network"]).Network(sim, cfg)
        gpu = Gpu(sim, 0, cfg.gpu, net)
        assert gpu.utilization(0.0) == 0.0
