"""Unit tests for the serving workload layer (repro.llm.serving).

The property suites (tests/properties/) cover the scheduler's sweep-level
invariants; these tests pin the individual pieces — spec validation,
request generation, graph construction, batcher admission/eviction
mechanics, TP-partition validation, histogram quantiles, the session
API, and the fig20 table/cache plumbing.
"""

import json
import math
import warnings

import pytest

from repro.common.config import dgx_h100_config
from repro.common.errors import WorkloadError
from repro.experiments.fig20_serving import format_table, spec_for
from repro.experiments.parallel import SimTask
from repro.experiments.runner import DEFAULT, Scale
from repro.llm.graph import CommKind, OpKind
from repro.llm.models import ModelConfig, by_name
from repro.llm.serving import (
    ContinuousBatcher,
    Request,
    ServingSpec,
    generate_requests,
    kv_bytes_per_token,
    serving_iteration_graph,
    simulate_serving,
)
from repro.llm.tiling import TilingConfig
from repro.llm.tp import validate_tp_partition
from repro.obs.metrics import EmptyDistributionWarning, MetricsRegistry
from repro.systems import make_system

TINY = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                   seq_len=64, batch=4, layers=4)
KVPT = kv_bytes_per_token(TINY)


def tiny_spec(**overrides) -> ServingSpec:
    base = dict(model="tiny", seed=7, arrival_rate_rps=100_000.0,
                horizon_ms=0.05, prompt_min=8, prompt_max=24,
                output_min=1, output_max=3, max_batch_requests=4)
    base.update(overrides)
    return ServingSpec(**base)


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    dict(arrival_rate_rps=0.0),
    dict(arrival_rate_rps=-5.0),
    dict(arrival_rate_rps=10.0, max_arrival_rate_rps=5.0),
    dict(horizon_ms=0.0),
    dict(prompt_min=0),
    dict(prompt_min=9, prompt_max=8),
    dict(output_min=0),
    dict(max_batch_requests=0),
    dict(kv_budget_bytes=0),
])
def test_spec_validation_rejects(bad):
    with pytest.raises(WorkloadError):
        tiny_spec(**bad)


def test_spec_effective_max_rate_defaults_to_rate():
    assert tiny_spec().effective_max_rate == 100_000.0
    assert tiny_spec(max_arrival_rate_rps=200_000.0) \
        .effective_max_rate == 200_000.0


def test_kv_bytes_per_token():
    # K and V, hidden wide, dtype-sized, one per layer.
    assert KVPT == 2 * 256 * TINY.dtype_bytes * 4
    assert kv_bytes_per_token(by_name("Mega-GPT-4B")) == \
        2 * 2048 * 2 * 32


# ---------------------------------------------------------------------------
# Request generation
# ---------------------------------------------------------------------------

def test_generate_requests_deterministic_and_bounded():
    spec = tiny_spec()
    a = generate_requests(spec)
    b = generate_requests(spec)
    assert a == b
    assert a, "candidate 0 is always accepted"
    assert a[0].rid == 0
    horizon_ns = spec.horizon_ms * 1e6
    for r in a:
        assert spec.prompt_min <= r.prompt_len <= spec.prompt_max
        assert spec.output_min <= r.output_len <= spec.output_max
        if r.rid > 0:
            assert r.arrival_ns <= horizon_ns
    arrivals = [r.arrival_ns for r in a]
    assert arrivals == sorted(arrivals)


def test_generate_requests_candidate_zero_survives_thinning():
    # At a 1e-6 acceptance ratio nothing but the guaranteed candidate 0
    # should make it through a short window.
    spec = tiny_spec(arrival_rate_rps=0.1,
                     max_arrival_rate_rps=100_000.0)
    requests = generate_requests(spec)
    assert [r.rid for r in requests] == [0]


# ---------------------------------------------------------------------------
# Iteration graphs
# ---------------------------------------------------------------------------

def test_iteration_graph_pads_to_tile_times_tp():
    g = serving_iteration_graph(TINY, tp=4, participants=[(10, 10), (1, 9)],
                                tile=32, style="sp")
    m = g["qkv"].gemm.m
    assert m % (32 * 4) == 0
    assert m >= 11
    # Attention is per participant, not padded.
    assert g["attn_score.0"].gemm.m == 10
    assert g["attn_score.1"].gemm.m == 1
    assert g["attn_score.1"].gemm.n == 9   # reads its own KV span


def test_iteration_graph_styles_pick_collectives():
    sp = serving_iteration_graph(TINY, tp=4, participants=[(8, 8)],
                                 tile=32, style="sp")
    basic = serving_iteration_graph(TINY, tp=4, participants=[(8, 8)],
                                    tile=32, style="basic")
    sp_kinds = sorted(op.comm.name for op in sp.ops()
                      if op.kind is OpKind.COMM)
    basic_kinds = sorted(op.comm.name for op in basic.ops()
                         if op.kind is OpKind.COMM)
    assert sp_kinds == ["ALL_GATHER", "ALL_GATHER",
                        "REDUCE_SCATTER", "REDUCE_SCATTER"]
    assert basic_kinds == ["ALL_REDUCE", "ALL_REDUCE"]
    assert sp["rs1"].comm is CommKind.REDUCE_SCATTER
    assert basic["ar1"].comm is CommKind.ALL_REDUCE


@pytest.mark.parametrize("participants, style", [
    ([], "sp"),
    ([(8, 8)], "flash"),
    ([(0, 8)], "sp"),
    ([(8, 0)], "sp"),
])
def test_iteration_graph_rejects_bad_inputs(participants, style):
    with pytest.raises(WorkloadError):
        serving_iteration_graph(TINY, tp=4, participants=participants,
                                tile=32, style=style)


def test_iteration_graph_checks_head_partition():
    with pytest.raises(WorkloadError, match="attention heads"):
        serving_iteration_graph(by_name("Mega-GPT-4B"), tp=5,
                                participants=[(8, 8)], tile=32)


# ---------------------------------------------------------------------------
# TP-partition validation (graph-build-time satellite)
# ---------------------------------------------------------------------------

def test_validate_tp_partition_names_model_and_degree():
    model = by_name("Mega-GPT-4B")     # 24 heads
    with pytest.raises(WorkloadError) as exc:
        validate_tp_partition(model, 5)
    msg = str(exc.value)
    assert "Mega-GPT-4B" in msg and "tp=5" in msg and "24" in msg
    assert isinstance(exc.value, ValueError)   # catchable as plain ValueError


def test_validate_tp_partition_accepts_exact_split():
    validate_tp_partition(by_name("Mega-GPT-4B"), 8)
    with pytest.raises(WorkloadError):
        validate_tp_partition(TINY, 1)


# ---------------------------------------------------------------------------
# Continuous batcher
# ---------------------------------------------------------------------------

def _requests(*lens):
    return [Request(rid=i, arrival_ns=float(i), prompt_len=p,
                    output_len=o) for i, (p, o) in enumerate(lens)]


def test_batcher_rejects_infeasible_budget():
    reqs = _requests((16, 2))
    with pytest.raises(WorkloadError, match="cannot hold"):
        ContinuousBatcher(tiny_spec(kv_budget_bytes=KVPT), TINY, reqs)


def test_batcher_admits_in_arrival_order_and_caps_batch():
    reqs = _requests((8, 1), (8, 1), (8, 1))
    batcher = ContinuousBatcher(tiny_spec(max_batch_requests=2),
                                TINY, reqs)
    plan = batcher.plan_iteration(now_ns=10.0)
    assert [p[0].stats.rid for p in plan] == [0, 1]
    # First participation is the whole prompt (prefill), span == chunk.
    assert [(t, s) for _, t, s in plan] == [(8, 8), (8, 8)]


def test_batcher_eviction_is_lifo_and_spares_oldest():
    # Budget fits two requests' first iteration but not their growth:
    # after the prefill commits, re-planning must evict the newest.
    reqs = _requests((8, 3), (8, 3))
    budget = 2 * 9 * KVPT          # both prefills fit exactly
    batcher = ContinuousBatcher(tiny_spec(kv_budget_bytes=budget,
                                          output_max=3), TINY, reqs)
    plan = batcher.plan_iteration(10.0)
    assert len(plan) == 2
    batcher.commit(plan, end_ns=100.0)
    plan2 = batcher.plan_iteration(100.0)
    # Decode would need 2 x 10 tokens > budget -> rid 1 evicted, rid 0
    # (the oldest) keeps running.
    assert [p[0].stats.rid for p in plan2] == [0]
    assert batcher.evictions == 1
    victim = batcher.waiting[0]
    assert victim.stats.rid == 1
    assert victim.stats.evictions == 1
    # The victim must re-prefill everything it had: prompt + 1 emitted.
    assert victim.prefill_pending == 9


def test_batcher_token_conservation_under_eviction():
    reqs = _requests((8, 3), (8, 3))
    budget = 2 * 9 * KVPT
    batcher = ContinuousBatcher(tiny_spec(kv_budget_bytes=budget,
                                          output_max=3), TINY, reqs)
    now, participations = 0.0, {0: 0, 1: 0}
    while not batcher.all_done():
        now += 100.0
        plan = batcher.plan_iteration(now)
        for active, _, _ in plan:
            participations[active.stats.rid] += 1
        batcher.commit(plan, end_ns=now)
    # Every participation emits exactly one token; an eviction's
    # re-prefill *replaces* a decode, so counts equal output lengths.
    assert participations == {0: 3, 1: 3}
    assert all(a.stats.finish_ns is not None for a in batcher.finished)
    assert batcher.peak_kv_bytes <= budget


# ---------------------------------------------------------------------------
# Driver + session + metrics
# ---------------------------------------------------------------------------

def _serve(system_name="TP-NVLS", style="basic", **overrides):
    config = dgx_h100_config(num_gpus=4, seed=1)
    tiling = TilingConfig(tile=32, chunk_bytes=32768, red_chunk_bytes=8192)
    system = make_system(system_name, config, tiling=tiling, jitter=False)
    return simulate_serving(system, tiny_spec(**overrides), model=TINY,
                            style=style)


def test_simulate_serving_details_and_stats_agree():
    result = _serve()
    assert result.run.details["serving.requests"] == len(result.stats)
    assert result.run.details["serving.tokens"] == \
        result.total_output_tokens
    assert result.run.details["serving.iterations"] == result.iterations
    assert result.tokens_per_s > 0
    assert result.makespan_ns >= max(s.finish_ns for s in result.stats)


def test_simulate_serving_rejects_bad_tp_partition():
    config = dgx_h100_config(num_gpus=3, seed=1)
    system = make_system("TP-NVLS", config, jitter=False)
    with pytest.raises(WorkloadError, match="tiny"):
        simulate_serving(system, tiny_spec(), model=TINY, style="basic")


def test_simulate_serving_populates_metrics_registry():
    from repro import obs
    registry = MetricsRegistry()
    obs.install(metrics=registry)
    try:
        result = _serve()
    finally:
        obs.reset()
    snap = json.loads(registry.to_json())
    counters = snap["counters"]
    assert counters["serving.requests_completed"] == len(result.stats)
    assert counters["serving.tokens_emitted"] == \
        result.total_output_tokens
    assert counters["serving.iterations"] == result.iterations
    assert snap["histograms"]["serving.ttft_ns"]["count"] == \
        len(result.stats)


# ---------------------------------------------------------------------------
# Histogram quantiles (obs satellite)
# ---------------------------------------------------------------------------

def test_histogram_quantile_walks_log2_buckets():
    registry = MetricsRegistry()
    h = registry.histogram("q")
    for v in (1.0, 2.0, 4.0, 1000.0):
        h.record(v)
    assert h.quantile(0.0) == 1.0
    assert h.quantile(0.5) == 2.0
    # Upper bucket bound, clamped to the observed max.
    assert h.quantile(1.0) == 1000.0
    assert h.quantile(0.9) == 1000.0


def test_histogram_quantile_edge_cases():
    from repro.obs import reset_empty_distribution_warnings
    reset_empty_distribution_warnings()  # warn-once is process-global
    registry = MetricsRegistry()
    h = registry.histogram("q")
    with pytest.warns(EmptyDistributionWarning, match="'q'"):
        assert math.isnan(h.quantile(0.5))  # empty -> nan, not a raise
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        h.quantile(-0.1)
    # A single-bucket histogram answers every quantile without warning.
    h.record(100.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert h.quantile(0.0) == 100.0
        assert h.quantile(0.5) == 100.0
        assert h.quantile(1.0) == 100.0


def test_histogram_empty_quantile_warns_once_per_instrument():
    from repro.obs.metrics import (Histogram,
                                   reset_empty_distribution_warnings)
    reset_empty_distribution_warnings()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            # Merge rollups rebuild fresh empty instances per envelope —
            # only the first query of each instrument *name* may warn.
            for _ in range(5):
                assert math.isnan(Histogram("fleet.ttft").quantile(0.95))
            assert math.isnan(Histogram("fleet.tpot").quantile(0.5))
        messages = [str(w.message) for w in caught
                    if issubclass(w.category, EmptyDistributionWarning)]
        assert len(messages) == 2
        assert any("'fleet.ttft'" in m for m in messages)
        assert any("'fleet.tpot'" in m for m in messages)
    finally:
        reset_empty_distribution_warnings()


# ---------------------------------------------------------------------------
# Experiment plumbing
# ---------------------------------------------------------------------------

def test_simtask_fingerprint_distinguishes_serving_specs():
    cfg = dgx_h100_config()
    base = dict(system="CAIS", graphs=(), config=cfg, scale=DEFAULT)
    plain = SimTask(**base)
    served = SimTask(serving=spec_for(DEFAULT), **base)
    served2 = SimTask(serving=spec_for(DEFAULT, seed=1), **base)
    prints = {t.fingerprint() for t in (plain, served, served2)}
    assert len(prints) == 3


def test_spec_for_scales_horizon_with_tokens_fraction():
    assert spec_for(Scale(tokens_fraction=0.5)).horizon_ms == \
        2 * spec_for(Scale(tokens_fraction=0.25)).horizon_ms


def test_format_table_reports_cais_advantage():
    cell = {"makespan_ns": 1.0, "serving.tokens_per_s": 100.0,
            "serving.ttft_mean_ns": 1e6, "serving.ttft_p95_ns": 2e6,
            "serving.tpot_mean_ns": 5e5, "serving.requests": 3.0,
            "serving.tokens": 12.0, "serving.iterations": 7.0,
            "serving.evictions": 1.0}
    results = {"TP-NVLS": dict(cell),
               "CAIS": dict(cell, **{"serving.tokens_per_s": 150.0})}
    text = format_table(results)
    assert "Fig. 20" in text
    assert "1.50x the best baseline (TP-NVLS)" in text
