"""Unit tests for report validation and report diffing (schema-level).

Integration coverage — building a report from a live serving run — lives
in tests/integration/test_report.py; here we pin the JSON schema contract
and the diff attribution logic on synthetic reports.
"""

import copy
import math

import pytest

from repro.experiments.diff import (DIFF_KIND, diff_reports, diff_to_json,
                                    format_diff, movement_breaches)
from repro.experiments.diff import main as diff_main
from repro.experiments.report import (REPORT_KIND, REPORT_SCHEMA,
                                      format_report, report_to_json,
                                      validate_report)


def _tail(v: float):
    return {"p50": v, "p90": v, "p95": v, "p99": v, "mean": v, "max": v}


def _window(index: int, **over):
    row = {
        "index": index,
        "start_ns": index * 100_000.0,
        "end_ns": (index + 1) * 100_000.0,
        "tokens": 10.0,
        "iterations": 5.0,
        "completions": 2.0,
        "evictions": 0.0,
        "sheds": 0.0,
        "aborts": 0.0,
        "retries": 0.0,
        "kv_peak_bytes": 1e6,
        "batch_peak": 4.0,
        "ttft_p95_ns": 2e6,
        "faults": [],
    }
    row.update(over)
    return row


def _report(**over):
    """A minimal schema-valid report (fault-free, two windows)."""
    report = {
        "schema": REPORT_SCHEMA,
        "kind": REPORT_KIND,
        "run": {"system": "CAIS", "model": "llama2-70b", "seed": 2026,
                "fault_intensity": 0.0, "workload": "serving"},
        "summary": {
            "requests": 4, "tokens": 20, "iterations": 10, "evictions": 0,
            "shed": 0, "aborts": 0,
            "kv_peak_bytes": 1e6, "makespan_ns": 200_000.0,
            "tokens_per_s": 1e5,
            "ttft_ns": _tail(2e6), "tpot_ns": _tail(5e5),
            "e2e_ns": _tail(4e6),
        },
        "slo": {
            "ttft_ms": 3.0, "tpot_ms": 0.75,
            "ttft_attainment": 0.75, "tpot_attainment": 1.0,
            "attainment": 0.75, "goodput_tokens_per_s": 7.5e4,
        },
        "window_ns": 100_000.0,
        "windows": [_window(0), _window(1)],
        "fault_windows": [],
        "phases": {
            "totals_ns": {"queue": 1e6, "prefill": 2e6, "decode": 3e6},
            "categories_ns": {"compute": 3e6, "comm": 2e6, "queue": 1e6,
                              "fault": 0.0},
        },
        "worst_requests": [],
    }
    report.update(over)
    return report


# ---------------------------------------------------------------------------
# validate_report
# ---------------------------------------------------------------------------

def test_validate_accepts_wellformed_report():
    validate_report(_report())


def test_validate_rejects_wrong_kind_and_schema():
    with pytest.raises(ValueError, match="kind"):
        validate_report(_report(kind="something-else"))
    with pytest.raises(ValueError, match="schema"):
        validate_report(_report(schema=REPORT_SCHEMA + 1))
    with pytest.raises(ValueError, match="not a JSON object"):
        validate_report([])


def test_validate_rejects_missing_summary_field():
    bad = _report()
    del bad["summary"]["tokens_per_s"]
    with pytest.raises(ValueError, match="summary.tokens_per_s"):
        validate_report(bad)


def test_validate_rejects_wrong_type():
    bad = _report()
    bad["summary"]["requests"] = "four"
    with pytest.raises(ValueError, match="summary.requests"):
        validate_report(bad)


def test_validate_rejects_malformed_window_row():
    bad = _report()
    del bad["windows"][1]["retries"]
    with pytest.raises(ValueError, match=r"windows\[1\].retries"):
        validate_report(bad)


# ---------------------------------------------------------------------------
# Serialization / rendering
# ---------------------------------------------------------------------------

def test_report_to_json_is_byte_stable():
    a = report_to_json(_report())
    b = report_to_json(copy.deepcopy(_report()))
    assert a == b
    assert "\n" not in a and ": " not in a  # canonical compact form


def test_format_report_renders_without_side_effects():
    report = _report()
    text = format_report(report)
    assert "repro run report" in text
    assert "CAIS llama2-70b" in text
    assert "Latency tails" in text
    assert report == _report()  # rendering mutated nothing


def test_format_report_dashes_out_nan_tails():
    report = _report()
    report["summary"]["tpot_ns"] = _tail(math.nan)
    text = format_report(report)
    assert "| TPOT | - |" in text


# ---------------------------------------------------------------------------
# diff_reports
# ---------------------------------------------------------------------------

def test_self_diff_has_no_movement():
    report = _report()
    diff = diff_reports(report, copy.deepcopy(report))
    assert diff["kind"] == DIFF_KIND
    assert diff["moved"] is False
    assert diff["windows"] == []
    assert all(cell["delta"] == 0.0 for cell in diff["summary"].values())
    assert "no movement: reports are identical" in format_diff(diff)


def test_self_diff_with_nan_tails_is_still_no_movement():
    # A run with no multi-token requests has NaN TPOT tails; NaN != NaN
    # must not read as movement.
    report = _report()
    report["summary"]["tpot_ns"] = _tail(math.nan)
    diff = diff_reports(report, copy.deepcopy(report))
    assert diff["moved"] is False
    assert diff["summary"]["tpot_p95_ns"]["delta"] == 0.0


def test_diff_attributes_movement_to_fault_category_and_windows():
    base = _report()
    other = copy.deepcopy(base)
    other["run"]["fault_intensity"] = 1.0
    other["summary"]["makespan_ns"] = 300_000.0
    other["summary"]["ttft_ns"] = _tail(8e6)
    other["phases"]["categories_ns"]["fault"] = 4e6
    other["windows"][1]["retries"] = 12.0
    other["windows"][1]["faults"] = ["link_down gpu0->sw0"]
    diff = diff_reports(base, other)
    assert diff["moved"] is True
    assert diff["summary"]["ttft_p95_ns"]["delta"] == pytest.approx(6e6)
    assert diff["phases"]["categories_ns"]["fault"]["delta"] \
        == pytest.approx(4e6)
    assert len(diff["windows"]) == 1
    row = diff["windows"][0]
    assert row["index"] == 1
    assert row["retries_delta"] == 12.0
    assert row["faults_base"] == []
    assert row["faults_other"] == ["link_down gpu0->sw0"]
    text = format_diff(diff)
    assert "largest category movement: fault (+4.00 ms)" in text
    assert "Window movement" in text


def test_diff_windows_union_handles_extra_windows():
    base = _report()
    other = copy.deepcopy(base)
    other["windows"].append(_window(2, tokens=7.0, completions=1.0))
    diff = diff_reports(base, other)
    assert [w["index"] for w in diff["windows"]] == [2]
    assert diff["windows"][0]["tokens_delta"] == 7.0


def test_diff_validates_inputs():
    with pytest.raises(ValueError, match="kind"):
        diff_reports(_report(kind="nope"), _report())


def test_diff_to_json_is_byte_stable():
    base, other = _report(), _report()
    assert diff_to_json(diff_reports(base, other)) \
        == diff_to_json(diff_reports(base, other))


# ---------------------------------------------------------------------------
# --fail-on-movement (the CI diff gate)
# ---------------------------------------------------------------------------

def _write_report(tmp_path, name, report):
    import json
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_movement_breaches_relative_threshold():
    base = _report()
    other = copy.deepcopy(base)
    other["summary"]["tokens_per_s"] *= 1.10          # +10%
    other["phases"]["totals_ns"]["queue"] *= 1.02     # +2%
    diff = diff_reports(base, other)
    breaches = movement_breaches(diff, threshold=0.05)
    assert len(breaches) == 1
    assert breaches[0].startswith("summary:tokens/s")
    # A looser gate tolerates both movements.
    assert movement_breaches(diff, threshold=0.25) == []


def test_movement_from_zero_base_always_breaches():
    base = _report()
    other = copy.deepcopy(base)
    other["summary"]["evictions"] = 3
    diff = diff_reports(base, other)
    breaches = movement_breaches(diff, threshold=0.5)
    assert any("from zero" in b for b in breaches)


def test_fail_on_movement_cli_gate(tmp_path, capsys):
    base_path = _write_report(tmp_path, "base.json", _report())
    other = copy.deepcopy(_report())
    other["summary"]["tokens_per_s"] *= 1.001          # tiny movement
    other_path = _write_report(tmp_path, "other.json", other)

    # Self-diff passes even the strictest gate.
    assert diff_main([base_path, base_path, "--fail-on-movement"]) == 0
    # Bare flag: any movement at all fails.
    assert diff_main([base_path, other_path, "--fail-on-movement"]) == 1
    assert "FAIL" in capsys.readouterr().out
    # Thresholded: 0.1% movement passes a 5% gate...
    assert diff_main([base_path, other_path,
                      "--fail-on-movement", "0.05"]) == 0
    # ...and fails a gate tighter than the movement.
    assert diff_main([base_path, other_path,
                      "--fail-on-movement", "0.0001"]) == 1
    out = capsys.readouterr().out
    assert "tokens/s" in out and "FAIL" in out


def test_fail_on_movement_rejects_bad_threshold(tmp_path):
    path = _write_report(tmp_path, "r.json", _report())
    with pytest.raises(SystemExit):
        diff_main([path, path, "--fail-on-movement", "not-a-number"])
    with pytest.raises(SystemExit):
        diff_main([path, path, "--fail-on-movement", "-1"])
