"""Validation of the flit-level crossbar, and cross-checks against the
message-granular fabric approximation."""

import pytest

from repro.common.config import LinkSpec, SwitchSpec
from repro.common.errors import SimulationError
from repro.common.events import Simulator
from repro.interconnect.crossbar import CrossbarSwitch

LINK = LinkSpec(bandwidth_gbps=16.0, latency_ns=0.0)


def make(num_ports=4, num_vcs=8, vc_depth=256):
    sim = Simulator()
    spec = SwitchSpec(num_vcs=num_vcs, vc_depth=vc_depth)
    xbar = CrossbarSwitch(sim, spec, LINK, num_ports)
    delivered = []
    for p in range(num_ports):
        xbar.set_delivery(p, delivered.append)
    return sim, xbar, delivered


def test_single_flow_latency_matches_serialization():
    """One message through an idle crossbar serializes at the link rate —
    the quantity the message-granular fabric charges as wire time."""
    sim, xbar, delivered = make()
    nbytes = 1024
    msg = xbar.inject(0, 1, nbytes)
    sim.run()
    assert len(delivered) == 1
    flits = nbytes // LINK.flit_bytes
    # Pipeline: one extra cycle for injection fill, then one flit/cycle.
    expected = (flits + 1) * xbar.cycle_ns
    assert msg.deliver_time == pytest.approx(expected, rel=0.05)


def test_output_contention_halves_each_flow():
    """Two inputs to one output share it fairly (RR arbitration)."""
    sim, xbar, delivered = make()
    a = xbar.inject(0, 2, 4096)
    b = xbar.inject(1, 2, 4096)
    sim.run()
    assert len(delivered) == 2
    # Interleaved one-flit-per-cycle: both finish ~2x the solo time and
    # within one cycle of each other.
    solo_cycles = 4096 // LINK.flit_bytes
    for msg in (a, b):
        assert msg.deliver_time == pytest.approx(
            2 * solo_cycles * xbar.cycle_ns, rel=0.1)
    assert abs(a.deliver_time - b.deliver_time) <= 2 * xbar.cycle_ns


def test_permutation_traffic_full_throughput():
    """A perfect matching keeps every port busy: no crossbar bottleneck."""
    sim, xbar, delivered = make(num_ports=4)
    msgs = [xbar.inject(p, (p + 1) % 4, 2048) for p in range(4)]
    sim.run()
    solo = (2048 // LINK.flit_bytes + 1) * xbar.cycle_ns
    for msg in msgs:
        assert msg.deliver_time <= solo * 1.1


def test_virtual_channels_bypass_head_of_line_blocking():
    """The paper's VC rationale: with one VC, a flow stuck behind a
    congested output delays an independent flow from the same input; with
    separate VCs it does not."""
    def run(num_vcs, vcs):
        sim, xbar, delivered = make(num_ports=4, num_vcs=num_vcs,
                                    vc_depth=8)
        # Saturate output 1 from input 3 so input 0's traffic to output 1
        # backs up inside input 0's buffers.
        for _ in range(4):
            xbar.inject(3, 1, 4096, vc=0)
        xbar.inject(0, 1, 4096, vc=vcs[0])     # contended flow
        victim = xbar.inject(0, 2, 512, vc=vcs[1])   # independent flow
        sim.run()
        return victim.deliver_time

    blocked = run(1, (0, 0))
    bypassed = run(2, (0, 1))
    assert bypassed < blocked * 0.6


def test_finite_vc_depth_backpressure():
    sim, xbar, delivered = make(num_ports=2, num_vcs=1, vc_depth=4)
    xbar.inject(0, 1, 16 * 64)    # 64 flits >> 4-deep VC
    sim.run()
    assert len(delivered) == 1    # completes despite the tiny buffer


def test_bad_ports_rejected():
    sim, xbar, delivered = make()
    with pytest.raises(SimulationError):
        xbar.inject(0, 9, 64)
    with pytest.raises(SimulationError):
        xbar.inject(0, 1, 64, vc=99)


def test_cross_model_bandwidth_agreement():
    """Fidelity cross-check: for a bandwidth-bound many-to-one pattern the
    message-granular Link model and the flit-level crossbar agree on the
    transfer time within a few percent."""
    from repro.interconnect.link import Link
    from repro.interconnect.message import Message, Op, gpu_node

    nbytes, senders = 8192, 3
    # Flit-level: three inputs stream to one output.
    sim, xbar, delivered = make(num_ports=4)
    msgs = [xbar.inject(p, 3, nbytes) for p in range(senders)]
    sim.run()
    flit_time = max(m.deliver_time for m in msgs)

    # Message-granular: the same bytes serialized on one output link.
    sim2 = Simulator()
    link = Link(sim2, LINK, "out")
    done = []
    link.deliver = lambda m: done.append(sim2.now)
    for _ in range(senders):
        link.send(Message(Op.STORE, gpu_node(0), gpu_node(1),
                          payload_bytes=nbytes))
    sim2.run()
    msg_time = max(done)
    # The Link model charges flit headers per 128 B packet; the crossbar
    # run above carries payload flits only — compare against its payload
    # serialization plus that overhead factor.
    assert flit_time * 1.125 == pytest.approx(msg_time, rel=0.08)
