"""Unit tests for experiment-harness helpers and fast experiment paths."""

import pytest

from repro.collectives.reference import wire_efficiency
from repro.common.config import dgx_h100_config
from repro.experiments.runner import (
    BASIC_STYLE_SYSTEMS, DEFAULT, FULL, QUICK, Scale, geomean,
    layer_graphs, markdown_table, speedups_over, style_for, sublayer_for)
from repro.experiments.fig17_scalability import scaled_model
from repro.llm.models import LLAMA_7B


class TestScale:
    def test_presets(self):
        assert QUICK.tokens_fraction == 0.125
        assert DEFAULT.tokens_fraction == 0.25
        assert FULL.tokens_fraction == 1.0

    def test_apply_scales_tokens_only(self):
        scaled = DEFAULT.apply(LLAMA_7B)
        assert scaled.hidden == LLAMA_7B.hidden
        assert scaled.seq_len == LLAMA_7B.seq_len // 4

    def test_full_is_identity(self):
        assert FULL.apply(LLAMA_7B) is LLAMA_7B


class TestStyles:
    def test_allreduce_systems_are_basic(self):
        for name in ("TP-NVLS", "CoCoNet", "FuseLib", "LADM"):
            assert style_for(name) == "basic"
            assert name in BASIC_STYLE_SYSTEMS

    def test_sp_systems(self):
        for name in ("SP-NVLS", "T3", "T3-NVLS", "CAIS", "CAIS-Base"):
            assert style_for(name) == "sp"

    def test_layer_graphs_counts(self):
        model = QUICK.apply(LLAMA_7B)
        assert len(layer_graphs(model, 8, "CAIS", training=False)) == 1
        assert len(layer_graphs(model, 8, "CAIS", training=True)) == 2
        basic = layer_graphs(model, 8, "TP-NVLS", training=False)[0]
        assert "ar1" in basic

    def test_sublayer_for_respects_style(self):
        model = QUICK.apply(LLAMA_7B)
        assert "ar" in sublayer_for(model, 8, "TP-NVLS", "L1")
        assert "rs" in sublayer_for(model, 8, "CAIS", "L1")


class TestHelpers:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_markdown_table_formats_floats(self):
        table = markdown_table(["a", "b"], [["x", 1.234], ["y", 2]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert "| x | 1.23 |" in table
        assert "| y | 2 |" in table

    def test_speedups_over(self):
        class R:
            def __init__(self, m):
                self.makespan_ns = m
        out = speedups_over({"CAIS": R(100.0), "X": R(150.0)})
        assert out["X"] == pytest.approx(1.5)
        assert out["CAIS"] == pytest.approx(1.0)


class TestFig17Scaling:
    def test_scaled_model_dims(self):
        m16 = scaled_model(16, QUICK)
        assert m16.hidden == 2 * LLAMA_7B.hidden
        assert m16.heads == 2 * LLAMA_7B.heads
        # Tokens shard evenly at every GPU count.
        for gpus in (8, 16, 32):
            m = scaled_model(gpus, QUICK)
            assert m.tokens % gpus == 0
            assert m.tokens // 128 >= gpus


class TestWireEfficiency:
    def test_matches_flit_overhead(self):
        cfg = dgx_h100_config()
        assert wire_efficiency(cfg) == pytest.approx(128 / 144)
