"""Unit tests for the experiment fan-out + simulation-reuse cache layer.

Fast paths only: the simulations here are a tiny synthetic GEMM+AllReduce
graph (a few dozen TBs), not the paper workloads — the figure-level
determinism suite lives in tests/integration/test_parallel_experiments.py.
"""

import json

import pytest

from repro import obs
from repro.common.config import dgx_h100_config
from repro.experiments.cache import (CACHE_SCHEMA, SimCache, canonical,
                                     fingerprint, gc_stale, scan_cache)
from repro.experiments.cache import main as cache_main
from repro.experiments.parallel import (AblationSpec, ExecContext,
                                        RunSummary, SimTask,
                                        run_matrix, summary_satisfies)
from repro.experiments.runner import (Scale, geomean, run_system,
                                      speedups_over)
from repro.llm.graph import CommKind, GemmShape, Graph, LogicalOp, OpKind
from repro.llm.tiling import TilingConfig
from repro.systems import RunResult

SCALE = Scale(tokens_fraction=1.0,
              tiling=TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192))


def tiny_graph(name="tiny", m=256) -> Graph:
    g = Graph(name)
    g.add(LogicalOp(name="gemm0", kind=OpKind.GEMM,
                    gemm=GemmShape(m, 256, 256)))
    g.add(LogicalOp(name="ar0", kind=OpKind.COMM, deps=("gemm0",),
                    comm=CommKind.ALL_REDUCE, comm_bytes=1 << 16))
    return g


def tiny_task(system="TP-NVLS", seed=2026, m=256, windows=None,
              histograms=False) -> SimTask:
    return SimTask(system=system, graphs=(tiny_graph(m=m),),
                   config=dgx_h100_config(seed=seed), scale=SCALE,
                   utilization_windows=windows,
                   collect_histograms=histograms)


class TestCanonical:
    def test_scalars_pass_through(self):
        assert canonical(3) == 3
        assert canonical("x") == "x"
        assert canonical(None) is None

    def test_enum_becomes_value(self):
        assert canonical(OpKind.GEMM) == "gemm"

    def test_frozenset_is_sorted(self):
        assert canonical(frozenset({"b", "a"})) == ["a", "b"]

    def test_dataclass_by_field(self):
        out = canonical(GemmShape(1, 2, 3))
        assert out == {"m": 1, "n": 2, "k": 3}

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestFingerprint:
    def test_stable_across_calls(self):
        assert tiny_task().fingerprint() == tiny_task().fingerprint()

    def test_seed_changes_fingerprint(self):
        assert tiny_task(seed=1).fingerprint() != \
            tiny_task(seed=2).fingerprint()

    def test_graph_shape_changes_fingerprint(self):
        assert tiny_task(m=256).fingerprint() != \
            tiny_task(m=512).fingerprint()

    def test_system_changes_fingerprint(self):
        assert tiny_task("TP-NVLS").fingerprint() != \
            tiny_task("SP-NVLS").fingerprint()

    def test_tiling_changes_fingerprint(self):
        other = SimTask(system="TP-NVLS", graphs=(tiny_graph(),),
                        config=dgx_h100_config(),
                        scale=Scale(tokens_fraction=1.0,
                                    tiling=TilingConfig(chunk_bytes=16384)))
        assert other.fingerprint() != tiny_task().fingerprint()

    def test_ablation_changes_fingerprint(self):
        base = tiny_task()
        abl = SimTask(system=base.system, graphs=base.graphs,
                      config=base.config, scale=base.scale,
                      ablation=AblationSpec.of({"prelaunch"}))
        assert abl.fingerprint() != base.fingerprint()

    def test_windows_do_not_change_fingerprint(self):
        # Summary resolution is a projection, not a simulation input —
        # figures requesting different window counts must share entries.
        assert tiny_task(windows=24).fingerprint() == \
            tiny_task(windows=None).fingerprint()

    def test_dict_order_is_canonical(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})


class TestRunSummary:
    def test_round_trips_through_json(self):
        summary, _ = _run_one(tiny_task(windows=4))
        blob = json.dumps(summary.to_dict(), sort_keys=True)
        back = RunSummary.from_dict(json.loads(blob))
        assert back == summary
        assert back.utilization_series is not None
        assert len(back.utilization_series) == 4

    def test_matches_direct_run_system(self):
        summary, _ = _run_one(tiny_task())
        res = run_system("TP-NVLS", [tiny_graph()], dgx_h100_config(),
                         SCALE)
        assert summary.makespan_ns == res.makespan_ns
        assert summary.events == res.events
        assert summary.avg_bandwidth_utilization == \
            pytest.approx(res.average_bandwidth_utilization())

    def test_satisfies_checks_series_shape(self):
        summary, _ = _run_one(tiny_task())           # no series
        assert summary_satisfies(tiny_task(), summary)
        assert not summary_satisfies(tiny_task(windows=4), summary)
        rich, _ = _run_one(tiny_task(windows=4))
        assert summary_satisfies(tiny_task(windows=4), rich)
        assert summary_satisfies(tiny_task(), rich)  # extra series is fine


class TestHistogramEnvelope:
    """Satellite: full distribution state rides the worker envelope."""

    def test_fingerprint_ignores_collect_histograms(self):
        # Like utilization_windows, histogram harvest is a projection of
        # the same simulation — cache entries must be shared.
        assert tiny_task(histograms=True).fingerprint() == \
            tiny_task(histograms=False).fingerprint()

    def test_collected_histograms_roundtrip_through_json(self):
        summary, _ = _run_one(tiny_task(histograms=True))
        assert summary.histograms is not None
        assert len(summary.histograms) > 0
        names = [h["name"] for h in summary.histograms]
        assert names == sorted(names)
        blob = json.dumps(summary.to_dict(), sort_keys=True)
        back = RunSummary.from_dict(json.loads(blob))
        assert back == summary
        assert back.histograms == summary.histograms

    def test_uncollected_histograms_stay_none(self):
        summary, _ = _run_one(tiny_task())
        assert summary.histograms is None
        blob = json.dumps(summary.to_dict(), sort_keys=True)
        # Serialized as an explicit null (distinct from collected-empty).
        assert json.loads(blob)["histograms"] is None
        assert RunSummary.from_dict(json.loads(blob)).histograms is None

    def test_satisfies_requires_collected_histograms(self):
        plain, _ = _run_one(tiny_task())
        rich, _ = _run_one(tiny_task(histograms=True))
        assert not summary_satisfies(tiny_task(histograms=True), plain)
        assert summary_satisfies(tiny_task(histograms=True), rich)
        assert summary_satisfies(tiny_task(), rich)  # extra states are fine

    def test_merged_worker_states_equal_single_run(self):
        # Two same-seed worker runs each ship full state; merging the
        # per-name states is associative and reproduces either run's
        # distribution exactly (integer bucket counts merge losslessly).
        from repro.obs.metrics import Histogram, merge_histogram_states
        s1, _ = _run_one(tiny_task(histograms=True))
        s2, _ = _run_one(tiny_task(histograms=True))
        assert s1.histograms == s2.histograms
        for st1, st2 in zip(s1.histograms, s2.histograms):
            merged = merge_histogram_states([st1, st2])
            assert merged["count"] == 2 * st1["count"]
            h = Histogram.from_state(merged)
            if st1["count"]:
                assert h.quantile(0.5) == \
                    Histogram.from_state(st1).quantile(0.5)

    def test_run_matrix_collects_histograms(self):
        ctx = ExecContext(jobs=1, cache=SimCache(root=None))
        out = run_matrix([tiny_task(histograms=True)], ctx)
        assert out[0].histograms is not None

    def test_dedup_alias_respects_histogram_need(self):
        # A histogram-needing task must not alias to a plain duplicate's
        # in-flight result within one matrix.
        ctx = ExecContext(jobs=1, cache=SimCache(root=None))
        out = run_matrix([tiny_task(), tiny_task(histograms=True)], ctx)
        assert out[1].histograms is not None
        # The reverse order may alias (a histogram-rich result satisfies
        # the plain request).
        ctx2 = ExecContext(jobs=1, cache=SimCache(root=None))
        out2 = run_matrix([tiny_task(histograms=True), tiny_task()], ctx2)
        assert out2[0].histograms is not None


def _run_one(task):
    from repro.experiments.parallel import _execute_task
    return _execute_task(task)


class TestSimCache:
    def test_memory_only_round_trip(self):
        cache = SimCache(root=None)
        cache.store("ab" * 32, {"makespan_ns": 1.0})
        assert cache.lookup("ab" * 32) == {"makespan_ns": 1.0}
        assert cache.lookup("cd" * 32) is None

    def test_disk_round_trip(self, tmp_path):
        fp = tiny_task().fingerprint()
        SimCache(root=str(tmp_path)).store(fp, {"x": 1})
        # A fresh instance (new process, conceptually) reads it back.
        assert SimCache(root=str(tmp_path)).lookup(fp) == {"x": 1}

    def test_disk_layout_is_versioned(self, tmp_path):
        cache = SimCache(root=str(tmp_path))
        cache.store("ff" * 32, {"x": 1})
        assert (tmp_path / CACHE_SCHEMA).is_dir()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        fp = "aa" * 32
        cache = SimCache(root=str(tmp_path))
        cache.store(fp, {"x": 1})
        path = tmp_path / CACHE_SCHEMA / fp[:2] / f"{fp}.json"
        path.write_text("{not json")
        assert SimCache(root=str(tmp_path)).lookup(fp) is None


class TestRunMatrix:
    def test_results_in_task_order(self):
        tasks = [tiny_task(m=256), tiny_task(m=512), tiny_task(m=256)]
        out = run_matrix(tasks)
        assert out[0] == out[2]
        assert out[1] != out[0]
        assert out[1].tbs_completed > out[0].tbs_completed

    def test_cache_hit_equals_fresh_simulation(self, tmp_path):
        cache = SimCache(root=str(tmp_path))
        fresh = run_matrix([tiny_task()],
                           ExecContext(jobs=1, cache=cache))[0]
        hit = run_matrix([tiny_task()],
                         ExecContext(jobs=1, cache=cache))[0]
        assert hit == fresh

    def test_changed_seed_misses(self, tmp_path):
        cache = SimCache(root=str(tmp_path))
        obs.install(metrics=obs.MetricsRegistry())
        try:
            metrics = obs.current_metrics()
            run_matrix([tiny_task(seed=1)],
                       ExecContext(jobs=1, cache=cache))
            run_matrix([tiny_task(seed=2)],
                       ExecContext(jobs=1, cache=cache))
            assert metrics.counter("cache.hits").value == 0
            assert metrics.counter("cache.misses").value == 2
        finally:
            obs.reset()

    def test_metrics_record_hits_and_wall_time(self, tmp_path):
        cache = SimCache(root=str(tmp_path))
        obs.install(metrics=obs.MetricsRegistry())
        try:
            metrics = obs.current_metrics()
            ctx = ExecContext(jobs=1, cache=cache)
            run_matrix([tiny_task(), tiny_task()], ctx)   # dup task: 1 sim
            assert metrics.counter("cache.hits").value == 1
            assert metrics.counter("cache.misses").value == 1
            hist = metrics.histogram("experiments.task_wall_ms")
            assert hist.count == 1
        finally:
            obs.reset()

    def test_dedup_within_one_matrix(self, tmp_path):
        # fig11/fig15/fig16 share baseline runs: identical tasks in one
        # matrix simulate once when a cache is attached.
        cache = SimCache(root=str(tmp_path))
        out = run_matrix([tiny_task()] * 3, ExecContext(jobs=1, cache=cache))
        assert out[0] == out[1] == out[2]

    def test_parallel_jobs_match_serial(self):
        tasks = [tiny_task(m=m) for m in (256, 384, 512)]
        serial = run_matrix(tasks, ExecContext(jobs=1))
        parallel = run_matrix(tasks, ExecContext(jobs=3))
        assert serial == parallel


class TestRunnerGuards:
    def test_geomean_normal(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_geomean_zero_warns(self):
        with pytest.warns(RuntimeWarning):
            assert geomean([1.0, 0.0]) == 0.0

    def test_geomean_negative_warns(self):
        with pytest.warns(RuntimeWarning):
            assert geomean([-1.0, 2.0]) == 0.0

    def test_speedups_over_zero_reference_warns(self):
        results = {
            "CAIS": _result(makespan_ns=0.0),
            "T3": _result(makespan_ns=5.0),
        }
        with pytest.warns(RuntimeWarning):
            out = speedups_over(results)
        assert out == {"CAIS": 0.0, "T3": 0.0}

    def test_speedups_over_normal(self):
        results = {
            "CAIS": _result(makespan_ns=2.0),
            "T3": _result(makespan_ns=5.0),
        }
        assert speedups_over(results)["T3"] == pytest.approx(2.5)


def _result(makespan_ns: float) -> RunResult:
    return RunResult(system="x", makespan_ns=makespan_ns, compute_ns=0.0,
                     tbs_completed=0, events=0)


# ---------------------------------------------------------------------------
# Cache introspection (`python -m repro cache`)
# ---------------------------------------------------------------------------

class TestCacheIntrospection:
    def _seed_cache(self, tmp_path):
        """A cache root with one current-schema entry and one stale dir."""
        root = tmp_path / "cache"
        cache = SimCache(str(root))
        task = tiny_task()
        summary, _ = _run_one(task)
        cache.store(task.fingerprint(), summary.to_dict())
        stale = root / "v0" / "ab"
        stale.mkdir(parents=True)
        (stale / ("c" * 64 + ".json")).write_text("{}")
        return root

    def test_scan_reports_schemas_and_staleness(self, tmp_path):
        root = self._seed_cache(tmp_path)
        rows = scan_cache(str(root))
        assert [(r["schema"], r["stale"], r["entries"]) for r in rows] \
            == [("v0", True, 1), (CACHE_SCHEMA, False, 1)]
        current = rows[1]
        assert current["bytes"] > 0
        assert current["newest_age_s"] is not None
        assert current["newest_age_s"] >= 0.0

    def test_scan_missing_root_is_empty(self, tmp_path):
        assert scan_cache(str(tmp_path / "nope")) == []

    def test_gc_evicts_only_stale_schemas(self, tmp_path):
        root = self._seed_cache(tmp_path)
        assert gc_stale(str(root)) == ["v0"]
        assert not (root / "v0").exists()
        assert (root / CACHE_SCHEMA).exists()
        # Nothing left to evict on the second pass.
        assert gc_stale(str(root)) == []

    def test_cache_cli_lists_and_gcs(self, tmp_path, capsys):
        root = self._seed_cache(tmp_path)
        assert cache_main(["--dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "stale" in out and CACHE_SCHEMA in out
        assert cache_main(["--dir", str(root), "--gc"]) == 0
        assert "evicted stale schema(s): v0" in capsys.readouterr().out
        assert not (root / "v0").exists()

    def test_cache_cli_json_mode(self, tmp_path, capsys):
        root = self._seed_cache(tmp_path)
        assert cache_main(["--dir", str(root), "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["schema"] for r in rows} == {"v0", CACHE_SCHEMA}
