"""Unit tests for critical-path extraction (repro.obs.critical_path)."""

import math

import pytest

from repro.common.errors import SimulationError
from repro.obs.causality import (BARRIER_SYNC, GEMM_COMPUTE,
                                 LINK_SERIALIZATION, QUEUEING_WAIT,
                                 SWITCH_MERGE, VECTOR_COMPUTE,
                                 CausalityRecorder)
from repro.obs.critical_path import (CriticalPath, Segment,
                                     extract_critical_path,
                                     format_comparison, format_report)


def attribution_of(recorder, makespan):
    path = extract_critical_path(recorder, makespan)
    return path, path.attribution()


# ---------------------------------------------------------------------------
# Hand-built graphs
# ---------------------------------------------------------------------------

def test_chain_with_gap_and_tail():
    cz = CausalityRecorder()
    a = cz.node(GEMM_COMPUTE, 0.0, 10.0, "compute")
    cz.node(LINK_SERIALIZATION, 12.0, 20.0, "tx", parents=((a, "queue"),))
    path, att = attribution_of(cz, 25.0)

    assert att[GEMM_COMPUTE] == 10.0
    assert att[QUEUEING_WAIT] == 2.0          # the [10, 12] queue gap
    # 8 ns of wire time plus the [20, 25] final-delivery tail.
    assert att[LINK_SERIALIZATION] == 13.0
    assert math.fsum(att.values()) == 25.0
    assert [s.kind for s in path.segments] == ["node", "queue", "node",
                                               "tail"]


def test_diamond_follows_the_straggler_branch():
    cz = CausalityRecorder()
    root = cz.node(GEMM_COMPUTE, 0.0, 10.0, "root")
    fast = cz.node(LINK_SERIALIZATION, 10.0, 14.0, "fast",
                   parents=((root, "queue"),))
    slow = cz.node(LINK_SERIALIZATION, 10.0, 20.0, "slow",
                   parents=((root, "queue"),))
    join = cz.node(SWITCH_MERGE, 20.0, 20.0, "join",
                   parents=((fast, "merge"), (slow, "merge")))
    path, att = attribution_of(cz, 20.0)

    assert [n.id for n in path.nodes] == [root, slow, join]
    assert att[GEMM_COMPUTE] == 10.0
    assert att[LINK_SERIALIZATION] == 10.0    # the slow branch, not fast
    assert att[SWITCH_MERGE] == 0.0           # zero-duration join
    assert math.fsum(att.values()) == 20.0


def test_overlapping_compute_and_comm_is_clamped():
    cz = CausalityRecorder()
    a = cz.node(GEMM_COMPUTE, 0.0, 10.0, "producer")
    # Consumer started at 5 (overlapped with its gating parent): only the
    # non-overlapped [10, 15] remainder may be charged.
    cz.node(VECTOR_COMPUTE, 5.0, 15.0, "consumer", parents=((a, "dep"),))
    path, att = attribution_of(cz, 15.0)

    assert att[GEMM_COMPUTE] == 10.0
    assert att[VECTOR_COMPUTE] == 5.0
    assert att[BARRIER_SYNC] == 0.0           # no dep gap: they overlapped
    assert math.fsum(att.values()) == 15.0
    path.verify()


def test_empty_recorder_attributes_everything_to_launch():
    path, att = attribution_of(CausalityRecorder(), 100.0)
    assert att[BARRIER_SYNC] == 100.0
    assert math.fsum(att.values()) == 100.0
    assert path.nodes == []


def test_terminal_after_makespan_is_rejected():
    cz = CausalityRecorder()
    cz.node(GEMM_COMPUTE, 0.0, 50.0, "late")
    with pytest.raises(SimulationError):
        extract_critical_path(cz, 40.0)


def test_verify_rejects_non_contiguous_partitions():
    bad = CriticalPath([], [Segment(0.0, 5.0, GEMM_COMPUTE, "node", "a"),
                            Segment(6.0, 10.0, GEMM_COMPUTE, "node", "b")],
                       10.0)
    with pytest.raises(SimulationError):
        bad.verify()


def test_attribution_sums_exactly_for_awkward_floats():
    cz = CausalityRecorder()
    prev, t = -1, 0.0
    for i in range(200):
        start, t = t, t + 0.1 * (i % 7 + 1)   # accumulating float error
        parents = ((prev, "queue"),) if prev >= 0 else ()
        prev = cz.node(GEMM_COMPUTE, start, t, f"n{i}", parents=parents)
    makespan = t + 0.3
    path = extract_critical_path(cz, makespan)   # verify() runs inside
    assert math.fsum(path.attribution().values()) == makespan


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------

def _simple_path():
    cz = CausalityRecorder()
    a = cz.node(GEMM_COMPUTE, 0.0, 10.0, "a")
    cz.node(LINK_SERIALIZATION, 12.0, 20.0, "b", parents=((a, "queue"),))
    return extract_critical_path(cz, 20.0)


def test_format_report_is_deterministic_and_complete():
    path = _simple_path()
    one, two = format_report("X", path), format_report("X", path)
    assert one == two
    assert "## Critical path — X" in one
    assert "| gemm_compute | 10.0 | 50.00% |" in one


def test_format_comparison_reports_category_movement():
    cz = CausalityRecorder()
    cz.node(SWITCH_MERGE, 0.0, 8.0, "merge-heavy")
    merge_heavy = extract_critical_path(cz, 10.0)
    out = format_comparison([("base", _simple_path()),
                             ("other", merge_heavy)])
    assert "switch_merge moved onto critical path: 8.0 ns" in out
    assert "| category | base | other |" in out
