"""Unit tests for the observability layer (repro.obs)."""

import json
import time
import types

import pytest

from repro import obs
from repro.common.events import Simulator
from repro.metrics.export import run_result_to_dict
from repro.metrics.timeline import Timeline
from repro.obs.metrics import (Histogram, MetricsRegistry, NullMetrics,
                               merge_histogram_states)
from repro.obs.perfetto import (to_chrome_trace, validate_chrome_trace,
                                validate_trace_file, write_chrome_trace)
from repro.obs.profiler import SimProfiler, owner_key
from repro.obs.tracer import NullTracer, Tracer


@pytest.fixture(autouse=True)
def _clean_obs():
    """Never leak installed sinks into other tests."""
    obs.reset()
    yield
    obs.reset()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def test_tracer_span_roundtrips_through_chrome_json(tmp_path):
    tr = Tracer()
    t = tr.track("GPU 0", "sm-slot 0")
    h = tr.begin(t, "tb[0]", 100.0, cat="tb", args={"kernel": "gemm"})
    tr.instant(t, "phase", 150.0, cat="tb-phase")
    tr.counter(t, "depth", 160.0, 3)
    tr.async_begin(t, "session", 7, 120.0, cat="merge")
    tr.async_end(t, "session", 7, 180.0, cat="merge")
    tr.end(h, 200.0)

    path = tmp_path / "trace.json"
    write_chrome_trace(tr, str(path))
    assert validate_trace_file(str(path)) == []
    loaded = json.loads(path.read_text())
    events = loaded["traceEvents"]
    span = next(e for e in events if e["ph"] == "X")
    assert span["name"] == "tb[0]"
    assert span["ts"] == pytest.approx(0.1)     # ns -> us
    assert span["dur"] == pytest.approx(0.1)
    meta_names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert {"GPU 0", "sm-slot 0"} <= meta_names


def test_tracer_flush_marks_unterminated_spans():
    tr = Tracer()
    t = tr.track("p", "t")
    tr.begin(t, "never-ends", 10.0)
    done = tr.begin(t, "ends", 20.0)
    tr.end(done, 30.0)
    assert tr.open_spans() == 1
    assert tr.flush(100.0) == 1
    assert tr.open_spans() == 0
    spans = [e for e in tr.events() if e["ph"] == "X"]
    flagged = next(s for s in spans if s["name"] == "never-ends")
    assert flagged["args"]["unterminated"] is True
    clean = next(s for s in spans if s["name"] == "ends")
    assert "args" not in clean or "unterminated" not in clean.get("args", {})


def test_tracer_flush_clamps_negative_duration():
    tr = Tracer()
    t = tr.track("p", "t")
    tr.begin(t, "late", 50.0)
    tr.flush(10.0)                       # flush time before span start
    span = next(e for e in tr.events() if e["ph"] == "X")
    assert span["dur"] >= 0


def test_tracer_end_rejects_unknown_handle():
    tr = Tracer()
    t = tr.track("p", "t")
    tr.begin(t, "still-open", 10.0)
    closed = tr.begin(t, "closed", 20.0)
    tr.end(closed, 30.0)
    with pytest.raises(ValueError) as excinfo:
        tr.end(closed, 40.0)             # double close
    msg = str(excinfo.value)
    assert str(closed) in msg            # names the offending handle
    assert "still-open" in msg           # lists what IS open
    with pytest.raises(ValueError):
        tr.end(999, 50.0)                # never-issued handle


def test_null_tracer_is_inert():
    tr = NullTracer()
    assert tr.enabled is False
    h = tr.begin(tr.track("p", "t"), "x", 0.0)
    tr.end(h, 1.0)
    tr.instant(0, "x", 0.0)
    tr.counter(0, "x", 0.0, 1)
    tr.async_begin(0, "x", 1, 0.0)
    tr.async_end(0, "x", 1, 0.0)
    assert tr.flush(0.0) == 0


def test_validator_rejects_malformed_events():
    assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    assert validate_chrome_trace([1, 2, 3])
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "??", "pid": 1, "tid": 1, "name": "x"}]})
    ok = {"traceEvents": [{"ph": "i", "pid": 1, "tid": 1, "name": "x",
                           "ts": 1.0, "s": "t"}]}
    assert validate_chrome_trace(ok) == []


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc()
    c.inc(2)
    g = reg.gauge("g")
    g.set(5.0)
    g.set(2.0)
    h = reg.histogram("h")
    for v in (0.5, 1.0, 2.0, 3.0, 1000.0):
        h.record(v)
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 3
    assert snap["gauges"]["g"] == {"value": 2.0, "peak": 5.0}
    hist = snap["histograms"]["h"]
    assert hist["count"] == 5
    assert hist["min"] == 0.5 and hist["max"] == 1000.0
    # 0.5 and 1.0 -> le_2^0; 2.0 -> le_2^1; 3.0 -> le_2^2; 1000 -> le_2^10
    assert hist["buckets"] == {"le_2^0": 2, "le_2^1": 1, "le_2^2": 1,
                               "le_2^10": 1}


def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    assert reg.histogram("z") is reg.histogram("z")
    assert reg.names() == ["x", "y", "z"]


def test_snapshot_json_is_deterministic():
    def build():
        reg = MetricsRegistry()
        # Insert in different orders; serialization must not care.
        for name in ("b", "a", "c"):
            reg.counter(name).inc(ord(name))
        reg.histogram("h").record(42.0)
        reg.gauge("g").set(1.5)
        return reg
    a, b = build(), build()
    assert a.to_json() == b.to_json()
    json.loads(a.to_json())              # valid JSON


def test_null_metrics_is_inert():
    reg = NullMetrics()
    assert reg.enabled is False
    reg.counter("x").inc()
    reg.gauge("y").set(3.0)
    reg.histogram("z").record(1.0)
    assert reg.snapshot() == {"counters": {}, "gauges": {},
                              "histograms": {}}


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------

class _Owner:
    def __init__(self):
        self.calls = 0

    def cb(self):
        self.calls += 1


def test_profiler_attributes_time_per_owner():
    prof = SimProfiler()
    obs.install(profiler=prof)
    sim = Simulator()
    owner = _Owner()
    for i in range(5):
        sim.schedule(float(i), owner.cb)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert owner.calls == 5
    assert prof.events == 6
    rows = dict((k, c) for k, _, c in prof.top())
    assert rows["_Owner.cb"] == 5
    assert prof.events_per_sec() > 0
    assert "_Owner.cb" in prof.report()
    summary = prof.summary()
    assert summary["events"] == 6 and summary["top"]


def test_owner_key_shapes():
    owner = _Owner()
    assert owner_key(owner.cb) == "_Owner.cb"
    assert "lambda" in owner_key(lambda: None)


# ---------------------------------------------------------------------------
# Simulator integration: auto-compaction and gauges
# ---------------------------------------------------------------------------

def test_simulator_auto_compacts_when_cancelled_dominate():
    sim = Simulator()
    events = [sim.schedule(1000.0 + i, lambda: None) for i in range(200)]
    for ev in events[:150]:
        ev.cancel()
    assert sim.cancelled_pending() == 150
    sim.schedule(1.0, lambda: None)      # push triggers the compaction
    assert sim.auto_compactions >= 1
    assert sim.cancelled_pending() == 0
    assert sim.pending() == 51
    sim.run()


def test_simulator_skips_compaction_for_small_queues():
    sim = Simulator()
    events = [sim.schedule(10.0 + i, lambda: None) for i in range(10)]
    for ev in events[:8]:
        ev.cancel()
    sim.schedule(1.0, lambda: None)
    assert sim.auto_compactions == 0     # below the size floor
    sim.run()


def test_simulator_publishes_engine_gauges():
    reg = MetricsRegistry()
    obs.install(metrics=reg)
    sim = Simulator()
    for i in range(100):
        sim.schedule(float(i), lambda: None)
    sim.run()
    snap = reg.snapshot()
    assert snap["gauges"]["sim.peak_queue_depth"]["peak"] >= 100
    assert snap["gauges"]["sim.events_processed"]["value"] == 100
    assert snap["gauges"]["sim.cancelled_fraction"]["value"] == 0.0


def test_cancelled_count_tracks_pops():
    sim = Simulator()
    ev = sim.schedule(5.0, lambda: None)
    ev.cancel()
    sim.schedule(6.0, lambda: None)
    sim.run()
    assert sim.cancelled_pending() == 0


# ---------------------------------------------------------------------------
# Timeline flush (regression: open spans used to vanish silently)
# ---------------------------------------------------------------------------

def test_timeline_flush_preserves_open_spans():
    tl = Timeline()
    done = tl.begin("finished", 0.0)
    tl.end(done, 50.0)
    tl.begin("abandoned", 10.0)
    assert tl.open_spans() == [("abandoned", 10.0)]
    flushed = tl.flush(100.0)
    assert [s.name for s in flushed] == ["abandoned"]
    assert tl.open_spans() == []
    spans = {s.name: s for s in tl.spans()}
    assert spans["finished"].complete is True
    assert spans["abandoned"].complete is False
    assert spans["abandoned"].end_ns == 100.0


def test_timeline_flush_clamps_end_before_start():
    tl = Timeline()
    tl.begin("late", 80.0)
    (span,) = tl.flush(20.0)
    assert span.end_ns == 80.0           # never negative duration


def _fake_result(timeline=None, metrics=None):
    res = types.SimpleNamespace(
        system="X", makespan_ns=100.0, compute_ns=1.0, tbs_completed=1,
        events=1, gpu_utilization=0.5, merge_stats=None, network=None,
        timeline=timeline, metrics=metrics, details={})
    res.average_bandwidth_utilization = lambda: 0.0
    return res


def test_export_flags_unterminated_kernels():
    tl = Timeline()
    h = tl.begin("good", 0.0)
    tl.end(h, 10.0)
    tl.begin("stuck", 5.0)
    tl.flush(100.0)
    out = run_result_to_dict(_fake_result(timeline=tl))
    by_name = {k["name"]: k for k in out["kernels"]}
    assert "unterminated" not in by_name["good"]
    assert by_name["stuck"]["unterminated"] is True


def test_export_folds_metrics_snapshot():
    reg = MetricsRegistry()
    reg.counter("c").inc(7)
    out = run_result_to_dict(_fake_result(metrics=reg))
    assert out["metrics"]["counters"]["c"] == 7


class _FakeTracker:
    bytes_transferred = 0

    @staticmethod
    def utilization(lo, hi):
        assert hi > lo                   # degenerate window = the old bug
        return 0.5


def test_utilization_series_window_count_is_exact():
    link = types.SimpleNamespace(tracker=_FakeTracker())
    network = types.SimpleNamespace(all_links=lambda: [link])
    for makespan, windows in ((0.3, 3), (1.0, 7), (515037.2, 13),
                              (1e9 / 3, 11), (7.0, 70)):
        res = _fake_result()
        res.network = network
        res.makespan_ns = makespan
        out = run_result_to_dict(res, time_series_windows=windows)
        series = out["utilization_series"]
        assert len(series) == windows, (makespan, windows)
        # Centers strictly increase and the last window ends at makespan.
        centers = [s["t_ns"] for s in series]
        assert all(a < b for a, b in zip(centers, centers[1:]))
        width = makespan / windows
        assert centers[-1] == pytest.approx(makespan - width / 2, rel=1e-6)


# ---------------------------------------------------------------------------
# Null-path overhead micro-benchmark
# ---------------------------------------------------------------------------

def test_disabled_observability_overhead_is_negligible():
    """With the null sinks installed, firing an event costs microseconds —
    the guard is one attribute read.  The bound is deliberately generous
    (50 us/event) so the test never flakes, while still catching a
    pathological regression such as recording while disabled."""
    n = 20_000
    sim = Simulator()

    def tick(left):
        if left:
            sim.schedule(1.0, tick, left - 1)

    sim.schedule(0.0, tick, n)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert sim.events_processed == n + 1
    assert elapsed / n < 50e-6


def test_disabled_run_records_nothing():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert obs.current_tracer().enabled is False
    assert obs.current_metrics().enabled is False
    assert obs.current_profiler() is None


# ---------------------------------------------------------------------------
# Histogram state transport (matrix-worker envelopes)
# ---------------------------------------------------------------------------

def _hist(name, values):
    h = Histogram(name)
    for v in values:
        h.record(v)
    return h


def test_histogram_state_roundtrips_losslessly():
    h = _hist("lat", [1.0, 2.0, 1000.0, 0.5])
    state = h.state()
    json.loads(json.dumps(state))  # JSON-serializable as-is
    back = Histogram.from_state(json.loads(json.dumps(state)))
    assert back.state() == state
    assert back.count == h.count
    assert back.quantile(0.5) == h.quantile(0.5)
    assert back.quantile(0.99) == h.quantile(0.99)


def test_empty_histogram_state_roundtrips():
    state = Histogram("empty").state()
    assert state["min"] is None and state["max"] is None
    back = Histogram.from_state(state)
    assert back.count == 0 and back.state() == state


def test_merge_histogram_states_matches_single_stream():
    # Integer-valued samples keep the float `sum` exact, so the merged
    # state must equal recording everything into one histogram.
    a = _hist("lat", [1.0, 4.0, 9.0])
    b = _hist("lat", [2.0, 256.0])
    merged = merge_histogram_states([a.state(), b.state()])
    assert merged == _hist("lat", [1.0, 4.0, 9.0, 2.0, 256.0]).state()


def test_merge_histogram_states_is_associative_and_commutative():
    parts = [_hist("lat", [1.0]).state(),
             _hist("lat", [2.0, 8.0]).state(),
             _hist("lat", [512.0]).state()]
    a, b, c = parts
    left = merge_histogram_states([merge_histogram_states([a, b]), c])
    right = merge_histogram_states([a, merge_histogram_states([b, c])])
    assert left == right
    assert merge_histogram_states([c, a, b]) == left


def test_merge_histogram_states_skips_empty_and_handles_nothing():
    empty = Histogram("").state()
    real = _hist("lat", [3.0]).state()
    assert merge_histogram_states([empty, real]) == real
    out = merge_histogram_states([])
    assert out["count"] == 0 and out["name"] == ""


def test_registry_histogram_states_sorted_by_name():
    mx = MetricsRegistry()
    mx.histogram("z.lat").record(1.0)
    mx.histogram("a.lat").record(2.0)
    states = mx.histogram_states()
    assert [s["name"] for s in states] == ["a.lat", "z.lat"]
