"""Unit tests for the windowed time-series sink (repro.obs.timeseries)."""

import json
import math

import pytest

from repro.obs.metrics import EmptyDistributionWarning, Histogram
from repro.obs.timeseries import (NullTimeSeries, TimeSeriesSink,
                                  annotate_windows)
from repro.obs.tracer import Tracer


# ---------------------------------------------------------------------------
# Window math
# ---------------------------------------------------------------------------

def test_window_index_and_count():
    ts = TimeSeriesSink(window_ns=100.0)
    assert ts.index(0.0) == 0
    assert ts.index(99.9) == 0
    assert ts.index(100.0) == 1
    assert ts.index(250.0) == 2
    assert ts.window_count(0.0) == 1
    assert ts.window_count(100.0) == 1
    assert ts.window_count(100.1) == 2
    assert ts.window_count(1000.0) == 10


def test_rejects_nonpositive_window():
    with pytest.raises(ValueError, match="window_ns"):
        TimeSeriesSink(window_ns=0.0)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

def test_counter_accumulates_per_window():
    ts = TimeSeriesSink(window_ns=100.0)
    c = ts.counter("tokens")
    c.add(10.0, 3)
    c.add(50.0, 2)
    c.add(150.0, 1)
    snap = ts.snapshot()
    assert [w["index"] for w in snap["windows"]] == [0, 1]
    assert snap["windows"][0]["counters"]["tokens"] == 5
    assert snap["windows"][1]["counters"]["tokens"] == 1
    assert c.total() == 6


def test_gauge_tracks_last_and_peak_per_window():
    ts = TimeSeriesSink(window_ns=100.0)
    g = ts.gauge("kv")
    g.set(10.0, 5.0)
    g.set(20.0, 9.0)
    g.set(30.0, 2.0)
    snap = ts.snapshot()
    assert snap["windows"][0]["gauges"]["kv"] == {"last": 2.0, "peak": 9.0}


def test_sketch_is_one_histogram_per_window():
    ts = TimeSeriesSink(window_ns=100.0)
    s = ts.sketch("ttft")
    s.record(10.0, 100.0)
    s.record(20.0, 200.0)
    s.record(150.0, 1000.0)
    snap = ts.snapshot()
    h0 = Histogram.from_state(snap["windows"][0]["sketches"]["ttft"])
    h1 = Histogram.from_state(snap["windows"][1]["sketches"]["ttft"])
    assert h0.count == 2 and h0.max == 200.0
    assert h1.count == 1 and h1.quantile(0.95) == 1000.0


def test_instruments_are_get_or_create():
    ts = TimeSeriesSink()
    assert ts.counter("a") is ts.counter("a")
    assert ts.gauge("b") is ts.gauge("b")
    assert ts.sketch("c") is ts.sketch("c")


# ---------------------------------------------------------------------------
# Marks (fault windows)
# ---------------------------------------------------------------------------

def test_marks_sorted_and_window_overlap():
    ts = TimeSeriesSink(window_ns=100.0)
    ts.mark_window(250.0, 350.0, "late")
    ts.mark_window(50.0, 150.0, "early")
    ts.mark_window(120.0, None, "permanent")
    assert [m[2] for m in ts.marks()] == ["early", "permanent", "late"]
    # Window 0 = [0,100): only the early mark overlaps.
    assert ts.window_marked(0, makespan_ns=400.0) == ["early"]
    # Window 1 = [100,200): early tail + open-ended permanent.
    assert ts.window_marked(1, makespan_ns=400.0) == ["early", "permanent"]
    # Window 3 = [300,400): late + permanent (clamped to makespan).
    assert ts.window_marked(3, makespan_ns=400.0) == ["permanent", "late"]
    # Open-ended mark already over by this window when makespan is short.
    assert ts.window_marked(3, makespan_ns=110.0) == ["late"]


# ---------------------------------------------------------------------------
# Snapshot
# ---------------------------------------------------------------------------

def test_snapshot_dense_with_makespan_sparse_without():
    ts = TimeSeriesSink(window_ns=100.0)
    ts.counter("x").add(250.0, 1)
    sparse = ts.snapshot()
    assert [w["index"] for w in sparse["windows"]] == [2]
    dense = ts.snapshot(makespan_ns=500.0)
    assert [w["index"] for w in dense["windows"]] == [0, 1, 2, 3, 4]
    assert "counters" not in dense["windows"][0]
    assert dense["windows"][2]["counters"]["x"] == 1
    assert dense["windows"][2]["start_ns"] == 200.0
    assert dense["windows"][2]["end_ns"] == 300.0


def test_snapshot_is_json_and_deterministic():
    def build():
        ts = TimeSeriesSink(window_ns=100.0)
        ts.counter("b").add(10.0, 1)
        ts.counter("a").add(10.0, 2)
        ts.gauge("g").set(150.0, 3.0)
        ts.sketch("s").record(150.0, 42.0)
        ts.mark_window(0.0, 100.0, "w")
        return json.dumps(ts.snapshot(makespan_ns=200.0), sort_keys=True)

    assert build() == build()
    loaded = json.loads(build())
    assert list(loaded["windows"][0]["counters"]) == ["a", "b"]


# ---------------------------------------------------------------------------
# Null sink
# ---------------------------------------------------------------------------

def test_null_timeseries_is_inert():
    ts = NullTimeSeries()
    assert ts.enabled is False
    ts.counter("x").add(0.0, 1)
    ts.gauge("x").set(0.0, 1.0)
    ts.sketch("x").record(0.0, 1.0)
    ts.mark_window(0.0, 1.0, "m")
    assert ts.marks() == []
    assert ts.snapshot() == {"window_ns": 0.0, "windows": [], "marks": []}
    # The shared no-op instrument is one object, not one per name.
    assert ts.counter("a") is ts.counter("b") is ts.sketch("c")


# ---------------------------------------------------------------------------
# Perfetto annotation
# ---------------------------------------------------------------------------

def test_annotate_windows_emits_boundaries_and_marks():
    ts = TimeSeriesSink(window_ns=100.0)
    ts.counter("x").add(50.0, 1)
    ts.mark_window(20.0, 120.0, "link_down a->b")
    ts.mark_window(80.0, None, "nvls_fail sw:0")
    tracer = Tracer()
    annotate_windows(tracer, ts, makespan_ns=250.0)
    tracks = dict(enumerate(tracer.tracks()))
    events = tracer.events()
    boundary = [e for e in events if e.get("cat") == "obs-window"]
    # window_count(250) = 3 windows -> 4 boundary instants (0..300ns).
    assert len(boundary) == 4
    assert all(tracks[e["track"]] == ("Obs", "windows") for e in boundary)
    marks = [e for e in events if e.get("cat") == "obs-mark"]
    begins = [e for e in marks if e["ph"] == "b"]
    ends = [e for e in marks if e["ph"] == "e"]
    assert len(begins) == len(ends) == 2
    # The open-ended mark is clamped to the makespan (ts is in us).
    open_end = [e for e in ends if e["name"] == "nvls_fail sw:0"][0]
    assert open_end["ts"] == pytest.approx(250.0 / 1e3)


def test_annotate_windows_noop_for_empty_run():
    tracer = Tracer()
    annotate_windows(tracer, TimeSeriesSink(), makespan_ns=0.0)
    assert tracer.events() == []


# ---------------------------------------------------------------------------
# Satellite: empty-sketch quantile guard at the window level
# ---------------------------------------------------------------------------

def test_window_sketch_quantile_of_untouched_window_is_nan():
    ts = TimeSeriesSink(window_ns=100.0)
    ts.sketch("lat").record(50.0, 10.0)
    snap = ts.snapshot(makespan_ns=300.0)
    # Window 1 never saw a sample: there is no sketch entry, and an
    # explicitly-rebuilt empty histogram answers nan with a warning
    # rather than raising.
    assert "sketches" not in snap["windows"][1]
    from repro.obs import reset_empty_distribution_warnings
    reset_empty_distribution_warnings()  # warn-once is process-global
    empty = Histogram("lat")
    with pytest.warns(EmptyDistributionWarning):
        assert math.isnan(empty.quantile(0.95))
