"""Unit tests for the CAIS compiler: IR, invariance analysis, grouping."""

import pytest

from repro.cais.compiler import (
    BlockIdx, BinOp, CompiledKernel, Const, Env, GpuId, KernelIR, MemInstr,
    MemOpKind, Param, compile_kernel, reset_group_ids)
from repro.common.errors import WorkloadError


@pytest.fixture(autouse=True)
def fresh_groups():
    reset_group_ids()


class TestExpr:
    def test_const_and_arith(self):
        e = Const(3) * 4 + 2
        assert e.evaluate(Env()) == 14
        assert not e.references_gpu_id()

    def test_block_idx_dims(self):
        env = Env(block_idx=(5, 7))
        assert BlockIdx(0).evaluate(env) == 5
        assert BlockIdx(1).evaluate(env) == 7

    def test_block_idx_out_of_range(self):
        with pytest.raises(WorkloadError):
            BlockIdx(2).evaluate(Env(block_idx=(1,)))

    def test_gpu_id_reference_propagates(self):
        e = (BlockIdx(0) + GpuId()) * 128
        assert e.references_gpu_id()
        assert e.evaluate(Env(block_idx=(2,), gpu_id=3)) == 640

    def test_param_lookup(self):
        e = Param("tile") * BlockIdx(0)
        assert e.evaluate(Env(block_idx=(3,), params={"tile": 256})) == 768

    def test_unbound_param_raises(self):
        with pytest.raises(WorkloadError):
            Param("missing").evaluate(Env())

    def test_div_mod(self):
        e = BlockIdx(0) // 4
        m = BlockIdx(0) % 4
        env = Env(block_idx=(10,))
        assert e.evaluate(env) == 2
        assert m.evaluate(env) == 2

    def test_unsupported_operator_rejected(self):
        with pytest.raises(WorkloadError):
            BinOp("-", Const(1), Const(2))


class TestAnalysis:
    def make_kernel(self, instrs, grid=(4,)):
        return KernelIR(name="k", grid=grid, mem_instrs=tuple(instrs))

    def test_gpu_invariant_load_becomes_cais(self):
        # Address = blockIdx * tile: identical on every GPU => mergeable.
        instr = MemInstr(MemOpKind.LOAD, home_expr=BlockIdx(0) % 4,
                         offset_expr=BlockIdx(0) * 4096, chunk_bytes=4096)
        ck = compile_kernel(self.make_kernel([instr]))
        assert len(ck.mergeable) == 1
        assert ck.mergeable[0].kind is MemOpKind.LOAD_CAIS
        assert not ck.non_mergeable
        assert ck.uses_cais

    def test_gpu_dependent_access_left_untouched(self):
        instr = MemInstr(MemOpKind.LOAD, home_expr=GpuId(),
                         offset_expr=BlockIdx(0) * 4096, chunk_bytes=4096)
        ck = compile_kernel(self.make_kernel([instr]))
        assert not ck.mergeable
        assert len(ck.non_mergeable) == 1
        assert ck.non_mergeable[0].kind is MemOpKind.LOAD
        assert not ck.groups

    def test_reduce_rewrites_to_red_cais(self):
        instr = MemInstr(MemOpKind.REDUCE, home_expr=Const(2),
                         offset_expr=BlockIdx(0) * 128, chunk_bytes=128)
        ck = compile_kernel(self.make_kernel([instr]))
        assert ck.mergeable[0].kind is MemOpKind.REDUCE_CAIS

    def test_groups_follow_referenced_dims_only(self):
        # Address depends only on blockIdx.x: all column tiles of a row
        # access the same region and share one group (Fig. 7b).
        instr = MemInstr(MemOpKind.LOAD, home_expr=Const(0),
                         offset_expr=BlockIdx(0), chunk_bytes=128)
        ck = compile_kernel(self.make_kernel([instr], grid=(2, 3)))
        assert len(ck.groups) == 2
        assert set(ck.group_by_block) == {(i, j)
                                          for i in range(2) for j in range(3)}
        assert (ck.group_by_block[(0, 0)].group_id ==
                ck.group_by_block[(0, 2)].group_id)
        assert (ck.group_by_block[(0, 0)].group_id !=
                ck.group_by_block[(1, 0)].group_id)

    def test_groups_per_tile_when_both_dims_referenced(self):
        instr = MemInstr(MemOpKind.REDUCE, home_expr=Const(0),
                         offset_expr=BlockIdx(0) * 1024 + BlockIdx(1) * 64,
                         chunk_bytes=64)
        ck = compile_kernel(self.make_kernel([instr], grid=(2, 3)))
        assert len(ck.groups) == 6

    def test_group_ids_unique_across_kernels(self):
        instr = MemInstr(MemOpKind.LOAD, home_expr=Const(0),
                         offset_expr=BlockIdx(0), chunk_bytes=128)
        ck1 = compile_kernel(self.make_kernel([instr], grid=(2,)))
        ck2 = compile_kernel(self.make_kernel([instr], grid=(2,)))
        ids = [g.group_id for g in ck1.groups + ck2.groups]
        assert len(ids) == len(set(ids))

    def test_invalid_grid_rejected(self):
        instr = MemInstr(MemOpKind.LOAD, home_expr=Const(0),
                         offset_expr=BlockIdx(0), chunk_bytes=128)
        with pytest.raises(WorkloadError):
            compile_kernel(self.make_kernel([instr], grid=(0,)))

    def test_mixed_instructions_split(self):
        inv = MemInstr(MemOpKind.REDUCE, home_expr=BlockIdx(0) % 8,
                       offset_expr=BlockIdx(0) * 128, chunk_bytes=128)
        dep = MemInstr(MemOpKind.LOAD, home_expr=(GpuId() + 1) % 8,
                       offset_expr=BlockIdx(0) * 128, chunk_bytes=128)
        ck = compile_kernel(self.make_kernel([inv, dep]))
        assert len(ck.mergeable) == 1 and len(ck.non_mergeable) == 1

    def test_cais_kind_is_idempotent(self):
        assert MemOpKind.LOAD_CAIS.to_cais() is MemOpKind.LOAD_CAIS
        assert MemOpKind.LOAD_CAIS.is_cais
        assert not MemOpKind.LOAD.is_cais
