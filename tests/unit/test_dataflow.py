"""Unit tests for the graph-level dataflow optimizer (chain detection and
fused lowering paths)."""

import pytest

from repro.cais import compiler as cais_compiler
from repro.cais.dataflow import CaisRunner, FusedChain, find_chains
from repro.common.config import dgx_h100_config
from repro.common.errors import WorkloadError
from repro.llm import tiling as llm_tiling
from repro.llm.graph import CommKind, GemmShape, Graph, LogicalOp, OpKind
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import (
    basic_forward_layer, sp_backward_layer, sp_forward_layer,
    sublayer_graph)
from repro.systems import Harness

TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)


def fresh():
    llm_tiling.reset_tensor_ids()
    cais_compiler.reset_group_ids()


class TestFindChains:
    def test_sublayer_is_one_full_chain(self):
        graph = sublayer_graph(LLAMA_7B, 8, "L1")
        chains = find_chains(graph)
        assert len(chains) == 1
        chain = chains[0]
        assert chain.gemm1 == "gemm1"
        assert chain.rs == "rs"
        assert chain.vectors == ["ln"]
        assert chain.ag == "ag"
        assert chain.gemm2s == ["gemm2"]

    def test_sp_forward_layer_chains(self):
        graph = sp_forward_layer(LLAMA_7B, 8)
        chains = find_chains(graph)
        by_comm = {}
        for chain in chains:
            for comm in (chain.rs, chain.ag, chain.ar):
                if comm:
                    by_comm[comm] = chain
        # Every collective is claimed by exactly one chain.
        assert set(by_comm) == {"ag1", "rs1", "ag2", "rs2"}
        # rs1 chain absorbs dropadd1+ln2 and ends at ag2 -> ffn1.
        chain = by_comm["rs1"]
        assert chain.gemm1 == "proj"
        assert chain.vectors == ["dropadd1", "ln2"]
        assert chain.ag == "ag2"
        assert chain.gemm2s == ["ffn1"]
        # ag1 is a standalone AG chain fed by ln1.
        assert by_comm["ag1"].rs is None
        assert by_comm["ag1"].vectors == ["ln1"]
        assert by_comm["ag1"].gemm2s == ["qkv"]
        # rs2 is a terminal RS chain (dropadd2, no AG).
        assert by_comm["rs2"].ag is None
        assert by_comm["rs2"].vectors == ["dropadd2"]

    def test_backward_layer_chains_cover_all_comms(self):
        graph = sp_backward_layer(LLAMA_7B, 8)
        chains = find_chains(graph)
        comms = {c for chain in chains
                 for c in (chain.rs, chain.ag, chain.ar) if c}
        assert comms == {"ag_rs2", "rs_ag2", "ag_rs1", "rs_ag1"}
        # ag_rs2 has two GEMM consumers (dgrad + wgrad).
        ag_rs2 = next(c for c in chains if c.ag == "ag_rs2")
        assert set(ag_rs2.gemm2s) == {"ffn2_dgrad", "ffn2_wgrad"}

    def test_basic_layer_ar_chains(self):
        graph = basic_forward_layer(LLAMA_7B, 8)
        chains = find_chains(graph)
        ars = [c for c in chains if c.ar]
        assert {c.ar for c in ars} == {"ar1", "ar2"}
        ar1 = next(c for c in ars if c.ar == "ar1")
        assert ar1.gemm1 == "proj"
        assert ar1.vectors == ["dropadd1", "ln2"]
        assert ar1.gemm2s == ["ffn1"]

    def test_members_unique_across_chains(self):
        for graph in (sp_forward_layer(LLAMA_7B, 8),
                      sp_backward_layer(LLAMA_7B, 8),
                      basic_forward_layer(LLAMA_7B, 8)):
            chains = find_chains(graph)
            members = [m for c in chains for m in c.members()]
            assert len(members) == len(set(members)), graph.name


class TestCaisRunnerLowering:
    def run_graph(self, graph, dataflow=True, coordination=True):
        fresh()
        harness = Harness(dgx_h100_config(), merge=True,
                          sync_tables=coordination, traffic_control=True,
                          fair_share=dataflow)
        runner = CaisRunner(harness, tiling=TILING, dataflow=dataflow,
                            coordination=coordination)
        done = {"ok": False}
        runner.run_graphs([graph], on_done=lambda: done.update(ok=True))
        harness.executor.run()
        assert done["ok"]
        return harness

    def test_sublayer_sp(self):
        model = LLAMA_7B.scaled(0.125)
        harness = self.run_graph(sublayer_graph(model, 8, "L1"))
        assert harness.merge_stats.sessions_completed > 0

    def test_sublayer_basic_ar(self):
        model = LLAMA_7B.scaled(0.125)
        harness = self.run_graph(
            sublayer_graph(model, 8, "L1", style="basic"))
        # AR lowering exercises BOTH read and write semantics: reduction
        # sessions from the red.cais epilogue and load sessions from the
        # replicated consumers' ld.cais reads.
        summary = harness.merge_stats.summary()
        assert summary["sessions_completed"] > 0

    def test_ar_without_dataflow_uses_barriers(self):
        model = LLAMA_7B.scaled(0.125)
        fast = self.run_graph(
            sublayer_graph(model, 8, "L1", style="basic"))
        slow = self.run_graph(
            sublayer_graph(model, 8, "L1", style="basic"),
            dataflow=False, coordination=False)
        assert slow.sim.now > fast.sim.now

    def test_unfusable_collective_raises(self):
        g = Graph("bad")
        g.add(LogicalOp("v", OpKind.VECTOR, elements=1024))
        g.add(LogicalOp("rs", OpKind.COMM, comm=CommKind.REDUCE_SCATTER,
                        comm_bytes=1 << 20, deps=("v",)))
        fresh()
        harness = Harness(dgx_h100_config(), merge=True, sync_tables=True)
        runner = CaisRunner(harness, tiling=TILING)
        with pytest.raises(WorkloadError):
            runner.run_graphs([g])
            harness.executor.run()

    def test_coordination_features_subset(self):
        fresh()
        harness = Harness(dgx_h100_config(), merge=True, sync_tables=True)
        runner = CaisRunner(harness, tiling=TILING,
                            coordination_features=frozenset({"prelaunch"}))
        assert runner.features == frozenset({"prelaunch"})
        assert harness.executor.tb_throttle is False

    def test_empty_graph_list_rejected(self):
        fresh()
        harness = Harness(dgx_h100_config(), merge=True)
        runner = CaisRunner(harness, tiling=TILING)
        with pytest.raises(WorkloadError):
            runner.run_graphs([])
