"""Unit tests for experiment-module internals (fast paths only)."""

import pytest

from repro.experiments import (
    fig02_scaling,
    fig11_end_to_end,
    fig12_sublayer,
    fig13_merge_table,
    fig14_table_sweep,
    fig16_utilization_trace,
    fig18_nvls_validation,
)
from repro.experiments.runner import QUICK


class TestFig13Stages:
    def test_stage_progression_is_cumulative(self):
        stages = fig13_merge_table.STAGES
        assert stages[0][1] == frozenset()
        for (_, prev), (_, cur) in zip(stages, stages[1:]):
            assert prev < cur            # strictly growing feature sets
        assert stages[-1][1] == frozenset(
            {"prelaunch", "preaccess", "throttle", "order"})


class TestFig18:
    def test_average_error_math(self):
        results = {64: {"error_%": 10.0}, 128: {"error_%": 2.0}}
        assert fig18_nvls_validation.average_error(results) == 6.0

    def test_format_table_includes_average(self):
        results = {64: {"simulated_us": 1.0, "reference_us": 1.0,
                        "error_%": 0.0}}
        out = fig18_nvls_validation.format_table(results)
        assert "average error" in out
        assert "64 MB" in out


class TestFig14:
    def test_normalized_uses_best_coordinated_point(self):
        results = {"CAIS": {8: 200.0, 320: 100.0},
                   "CAIS-w/o-Coord": {8: 400.0, 320: 200.0}}
        norm = fig14_table_sweep.normalized(results)
        assert norm["CAIS"][320] == pytest.approx(1.0)
        assert norm["CAIS"][8] == pytest.approx(0.5)
        assert norm["CAIS-w/o-Coord"][320] == pytest.approx(0.5)


class TestFig16:
    def test_steady_state_stats_middle_half(self):
        series = [(float(i), u) for i, u in
                  enumerate([0.0, 0.0, 0.5, 0.7, 0.6, 0.8, 0.0, 0.0])]
        stats = fig16_utilization_trace.steady_state_stats(series)
        assert stats["mean"] == pytest.approx((0.5 + 0.7 + 0.6 + 0.8) / 4)
        assert stats["min"] == 0.5
        assert stats["max"] == 0.8


class TestFig11Rows:
    def test_speedup_rows_include_geomean(self):
        results = {"inference": {"m": {
            "CAIS": {"per_layer_us": 100.0},
            "TP-NVLS": {"per_layer_us": 150.0},
            "SP-NVLS": {"per_layer_us": 200.0},
        }}}
        rows = fig11_end_to_end.speedup_rows(results, "inference")
        assert rows[0][0] == "m"
        assert rows[-1][0] == "geomean"
        assert rows[0][1] == pytest.approx(1.5)
        assert rows[0][2] == pytest.approx(2.0)


class TestFig02Pieces:
    def test_compute_time_scales_down_with_tp(self):
        t4 = fig02_scaling.compute_time_ns(
            QUICK.apply(__import__("repro.llm.models",
                                   fromlist=["LLAMA_7B"]).LLAMA_7B),
            4, QUICK)
        t8 = fig02_scaling.compute_time_ns(
            QUICK.apply(__import__("repro.llm.models",
                                   fromlist=["LLAMA_7B"]).LLAMA_7B),
            8, QUICK)
        assert t8 < t4

    def test_comm_time_grows_with_tp(self):
        from repro.llm.models import LLAMA_7B
        model = QUICK.apply(LLAMA_7B)
        t4 = fig02_scaling.comm_time_ns(model, 4, QUICK)
        t8 = fig02_scaling.comm_time_ns(model, 8, QUICK)
        assert t8 > t4


class TestFig12Format:
    def test_format_table_geomean_row(self):
        results = {"LLaMA-7B": {"L1": {
            "CAIS": 100.0, "TP-NVLS": 140.0, "SP-NVLS": 150.0,
            "CoCoNet": 200.0, "FuseLib": 195.0, "T3": 160.0,
            "CoCoNet-NVLS": 120.0, "FuseLib-NVLS": 118.0,
            "T3-NVLS": 125.0, "LADM": 700.0, "CAIS-Base": 135.0}}}
        out = fig12_sublayer.format_table(results)
        assert "geomean" in out
        assert "LLaMA-7B L1" in out
        assert "| 1.40 |" in out      # TP-NVLS speedup 140/100
