"""Unit tests for the cross-run ledger (repro.obs.ledger +
repro.experiments.ledger).

Covers the record schema contract, the volatile-field quarantine
(same-seed re-runs append byte-identical stable sections), atomic
concurrent appends from real worker processes, and the query/summarize/
regress logic the ``repro ledger`` CLI exposes.  Matrix-level coverage
(hit-records on warm re-runs, meta-trace validity) lives in
tests/integration/test_ledger_matrix.py.
"""

import json
import multiprocessing
import os

import pytest

from repro.common.config import dgx_h100_config
from repro.experiments.ledger import (filter_records, record_for_task,
                                      regress_check, summarize_records,
                                      summary_metrics, task_spec)
from repro.experiments.parallel import SimTask, _execute_task
from repro.experiments.runner import Scale
from repro.llm.graph import CommKind, GemmShape, Graph, LogicalOp, OpKind
from repro.llm.tiling import TilingConfig
from repro.obs.ledger import (LEDGER_ENV, LEDGER_SCHEMA, NullLedger,
                              RunLedger, build_record, ledger_from_env,
                              stable_line, stable_view, validate_record)

SCALE = Scale(tokens_fraction=1.0,
              tiling=TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192))


def tiny_task(system="TP-NVLS", seed=2026) -> SimTask:
    g = Graph("tiny")
    g.add(LogicalOp(name="gemm0", kind=OpKind.GEMM,
                    gemm=GemmShape(256, 256, 256)))
    g.add(LogicalOp(name="ar0", kind=OpKind.COMM, deps=("gemm0",),
                    comm=CommKind.ALL_REDUCE, comm_bytes=1 << 16))
    return SimTask(system=system, graphs=(g,),
                   config=dgx_h100_config(seed=seed), scale=SCALE)


def valid_record(fp_char="a", makespan=123.0, cache_hit=False,
                 wall_ms=7.5):
    return build_record(
        fingerprint=fp_char * 64,
        spec={"system": "CAIS", "workload": "graphs", "seed": 1},
        metrics={"makespan_ns": makespan, "events": 10},
        details={"x": 1.0},
        cache_hit=cache_hit, wall_ms=wall_ms)


# ---------------------------------------------------------------------------
# Record schema
# ---------------------------------------------------------------------------

class TestRecordSchema:
    def test_build_record_is_schema_valid(self):
        validate_record(valid_record())   # must not raise

    def test_volatile_carries_provenance(self):
        vol = valid_record(cache_hit=True, wall_ms=3.25)["volatile"]
        assert vol["cache_hit"] is True
        assert vol["wall_ms"] == 3.25
        assert vol["pid"] == os.getpid()
        assert "recorded_unix" in vol and "git_rev" in vol
        assert vol["tools"]["python"].count(".") == 2

    @pytest.mark.parametrize("key", ["schema", "kind", "fingerprint",
                                     "spec", "metrics", "details",
                                     "volatile"])
    def test_missing_section_rejected(self, key):
        rec = valid_record()
        del rec[key]
        with pytest.raises(ValueError, match="missing|kind|schema"):
            validate_record(rec)

    def test_wrong_kind_and_schema_rejected(self):
        rec = valid_record()
        rec["kind"] = "something-else"
        with pytest.raises(ValueError, match="kind"):
            validate_record(rec)
        rec = valid_record()
        rec["schema"] = LEDGER_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            validate_record(rec)

    def test_bad_fingerprint_rejected(self):
        rec = valid_record()
        rec["fingerprint"] = "xyz"
        with pytest.raises(ValueError, match="fingerprint"):
            validate_record(rec)

    def test_non_numeric_metrics_rejected(self):
        rec = valid_record()
        rec["metrics"]["makespan_ns"] = "fast"
        with pytest.raises(ValueError, match="makespan_ns"):
            validate_record(rec)

    def test_missing_volatile_fields_rejected(self):
        rec = valid_record()
        del rec["volatile"]["cache_hit"]
        with pytest.raises(ValueError, match="cache_hit"):
            validate_record(rec)


# ---------------------------------------------------------------------------
# Volatile quarantine
# ---------------------------------------------------------------------------

class TestStableView:
    def test_stable_view_strips_only_volatile(self):
        rec = valid_record()
        view = stable_view(rec)
        assert "volatile" not in view
        assert set(view) == {"schema", "kind", "fingerprint", "spec",
                             "metrics", "details"}

    def test_stable_line_ignores_volatile_differences(self):
        a = valid_record(cache_hit=False, wall_ms=100.0)
        b = valid_record(cache_hit=True, wall_ms=0.5)
        assert a["volatile"] != b["volatile"]
        assert stable_line(a) == stable_line(b)

    def test_stable_line_sees_metric_differences(self):
        assert stable_line(valid_record(makespan=1.0)) != \
            stable_line(valid_record(makespan=2.0))

    def test_rerun_records_are_byte_identical(self):
        """Five same-seed re-runs of one task -> one stable line."""
        task = tiny_task()
        lines = set()
        for _ in range(5):
            summary, wall_ms = _execute_task(task)
            rec = record_for_task(task, summary, cache_hit=False,
                                  wall_ms=wall_ms)
            validate_record(rec)
            lines.add(stable_line(rec))
        assert len(lines) == 1

    def test_different_seeds_get_different_fingerprints(self):
        fps = {tiny_task(seed=s).fingerprint() for s in range(3)}
        assert len(fps) == 3


# ---------------------------------------------------------------------------
# Spec digest
# ---------------------------------------------------------------------------

class TestTaskSpec:
    def test_spec_names_the_run(self):
        spec = task_spec(tiny_task(seed=7))
        assert spec["system"] == "TP-NVLS"
        assert spec["workload"] == "graphs"
        assert spec["seed"] == 7
        assert spec["graphs"] == ["tiny"]
        assert spec["serving"] is None and spec["ablation"] is None
        assert spec["scale"]["tiling"]["chunk_bytes"] == 32768
        assert spec["faults"]["enabled"] is False

    def test_spec_is_json_serializable(self):
        json.dumps(task_spec(tiny_task()), sort_keys=True)

    def test_summary_metrics_match_record(self):
        task = tiny_task()
        summary, wall = _execute_task(task)
        rec = record_for_task(task, summary, cache_hit=False, wall_ms=wall)
        assert rec["metrics"] == summary_metrics(summary)
        assert rec["metrics"]["makespan_ns"] == summary.makespan_ns
        assert rec["fingerprint"] == task.fingerprint()


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

class TestRunLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        led = RunLedger(str(tmp_path / "led"))
        rec = valid_record()
        led.append(rec)
        assert len(led) == 1
        assert led.records() == [rec]

    def test_corrupt_and_foreign_lines_skipped(self, tmp_path):
        led = RunLedger(str(tmp_path / "led"))
        led.append(valid_record())
        with open(led.path, "a") as fh:
            fh.write("not json at all\n")
            fh.write('{"kind": "something-else"}\n')
            fh.write("\n")
        led.append(valid_record(fp_char="b"))
        recs = led.records()
        assert len(recs) == 2
        assert {r["fingerprint"][0] for r in recs} == {"a", "b"}

    def test_append_validates(self, tmp_path):
        led = RunLedger(str(tmp_path / "led"))
        with pytest.raises(ValueError):
            led.append({"kind": "wrong"})
        assert len(led) == 0

    def test_unwritable_root_warns_and_drops(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        led = RunLedger(str(target))
        with pytest.warns(RuntimeWarning, match="unwritable"):
            led.append(valid_record())
        # Second append stays silent (warn-once) and still doesn't raise.
        led.append(valid_record())
        assert led.records() == []

    def test_stale_schema_dirs(self, tmp_path):
        root = tmp_path / "led"
        led = RunLedger(str(root))
        led.append(valid_record())
        (root / "v0").mkdir()
        assert [p.name for p in led.stale_schema_dirs()] == ["v0"]

    def test_ledger_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        assert isinstance(ledger_from_env(), NullLedger)
        assert not ledger_from_env().enabled
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "led"))
        led = ledger_from_env()
        assert isinstance(led, RunLedger) and led.enabled
        assert led.root == tmp_path / "led"

    def test_null_ledger_is_inert(self):
        led = NullLedger()
        led.append({"anything": True})   # no validation, no I/O
        assert led.records() == [] and len(led) == 0


def _append_worker(args):
    root, worker_id, count = args
    led = RunLedger(root)
    for i in range(count):
        led.append(build_record(
            fingerprint=f"{worker_id:x}" * 64,
            spec={"worker": worker_id},
            metrics={"makespan_ns": float(i), "events": i},
            cache_hit=False, wall_ms=1.0))
    return worker_id


class TestConcurrentAppends:
    def test_parallel_process_appends_interleave_whole_lines(self, tmp_path):
        """4 processes x 25 records, one shared file: every line intact."""
        root = str(tmp_path / "led")
        with multiprocessing.Pool(4) as pool:
            pool.map(_append_worker, [(root, w, 25) for w in range(4)])
        led = RunLedger(root)
        recs = led.records()
        assert len(recs) == 100
        # No fragmented/corrupt lines: the reader validated every one.
        per_worker = {}
        for rec in recs:
            per_worker.setdefault(rec["spec"]["worker"], 0)
            per_worker[rec["spec"]["worker"]] += 1
        assert per_worker == {0: 25, 1: 25, 2: 25, 3: 25}


# ---------------------------------------------------------------------------
# Query / summarize / regress
# ---------------------------------------------------------------------------

class TestQuerySummarize:
    def _records(self):
        a = valid_record(fp_char="a", makespan=10.0)
        b = valid_record(fp_char="b", makespan=20.0, cache_hit=True,
                         wall_ms=0.0)
        b["spec"]["system"] = "TP-NVLS"
        b["spec"]["seed"] = 2
        return [a, b]

    def test_filter_by_system_seed_fingerprint(self):
        recs = self._records()
        assert filter_records(recs, system="CAIS") == [recs[0]]
        assert filter_records(recs, seed=2) == [recs[1]]
        assert filter_records(recs, fingerprint="bb") == [recs[1]]
        assert filter_records(recs, workload="serving") == []

    def test_summarize_groups_and_rates(self):
        groups = summarize_records(self._records())
        assert [(g["system"], g["runs"]) for g in groups] == \
            [("CAIS", 1), ("TP-NVLS", 1)]
        hit = next(g for g in groups if g["system"] == "TP-NVLS")
        assert hit["cache_hit_rate"] == 1.0
        assert hit["sim_wall_ms_total"] == 0.0


def replica_task(role="replica", index=0, seed=2026) -> SimTask:
    from repro.llm.fleet import ReplicaSpec
    from repro.llm.serving import ServingSpec
    spec = ServingSpec(model="Mega-GPT-4B", seed=seed)
    replica = ReplicaSpec(role=role, index=index, spec=spec,
                          requests=((0, 0.0, 8, 2, False),))
    return SimTask(system="CAIS", graphs=(),
                   config=dgx_h100_config(seed=seed), scale=SCALE,
                   replica=replica)


class TestFleetRole:
    """Satellite: fleet runs must not alias single-session serving."""

    def test_replica_task_spec_carries_fleet_role(self):
        spec = task_spec(replica_task(role="prefill", index=2))
        assert spec["workload"] == "fleet"
        assert spec["role"] == "prefill[2]"
        assert spec["model"] == "Mega-GPT-4B"
        # The per-replica serving spec is what ran, so it is recorded.
        assert spec["serving"]["model"] == "Mega-GPT-4B"
        json.dumps(spec, sort_keys=True)   # digest stays serializable

    def test_non_fleet_specs_have_no_role(self):
        assert task_spec(tiny_task())["role"] is None

    def test_summarize_keys_on_fleet_role(self):
        def rec_for(task, makespan):
            return build_record(
                fingerprint=task.fingerprint(), spec=task_spec(task),
                metrics={"makespan_ns": makespan, "events": 1},
                cache_hit=False, wall_ms=1.0)

        records = [rec_for(replica_task(role="replica", index=0), 10.0),
                   rec_for(replica_task(role="replica", index=1), 20.0),
                   rec_for(replica_task(role="prefill", index=0), 30.0)]
        groups = summarize_records(records)
        # Three fleet records, three rollup rows — roles never alias.
        assert [(g["workload"], g["role"]) for g in groups] == \
            [("fleet", "prefill[0]"), ("fleet", "replica[0]"),
             ("fleet", "replica[1]")]
        assert all(g["runs"] == 1 for g in groups)

    def test_summarize_mixes_roled_and_roleless_records(self):
        fleet_rec = build_record(
            fingerprint="d" * 64,
            spec=task_spec(replica_task()),
            metrics={"makespan_ns": 5.0, "events": 1},
            cache_hit=False, wall_ms=1.0)
        groups = summarize_records([valid_record(), fleet_rec])
        # None-roled legacy records sort alongside roled ones (no
        # None-vs-str comparison), each in its own group.
        assert [(g["system"], g["workload"], g["role"]) for g in groups] \
            == [("CAIS", "fleet", "replica[0]"),
                ("CAIS", "graphs", None)]


class TestRegress:
    def test_empty_ledger_is_a_problem(self):
        assert regress_check([]) != []

    def test_clean_history_passes(self):
        recs = [valid_record(makespan=10.0),
                valid_record(makespan=10.0, cache_hit=True, wall_ms=0.0)]
        assert regress_check(recs) == []

    def test_determinism_drift_detected(self):
        recs = [valid_record(makespan=10.0), valid_record(makespan=11.0)]
        problems = regress_check(recs)
        assert any("drift" in p for p in problems)

    def test_replay_divergence_named_as_cache_problem(self):
        recs = [valid_record(makespan=10.0),
                valid_record(makespan=11.0, cache_hit=True, wall_ms=0.0)]
        problems = regress_check(recs)
        assert any("replay" in p for p in problems)

    def test_throughput_canary(self):
        # 10 events over 1000 s is catastrophically slow vs any reference.
        slow = build_record(fingerprint="c" * 64, spec={},
                            metrics={"makespan_ns": 1.0, "events": 10},
                            cache_hit=False, wall_ms=1e6)
        bench = {"events_per_cpu_second": 100_000.0}
        problems = regress_check([slow], engine_bench=bench)
        assert any("throughput" in p for p in problems)
        # The same record passes when the envelope is absent.
        assert regress_check([slow]) == []

    def test_expensive_hits_flagged_against_baseline(self):
        lazy_hit = valid_record(cache_hit=True, wall_ms=5000.0)
        problems = regress_check([lazy_hit], baseline_bench={"rows": []})
        assert any("replays" in p for p in problems)
