"""Unit tests for the bandwidth tracker."""

import pytest

from repro.metrics.bandwidth import BandwidthTracker


def test_busy_time_and_utilization():
    t = BandwidthTracker()
    t.record(0.0, 10.0, 100)
    t.record(20.0, 30.0, 100)
    assert t.busy_time() == pytest.approx(20.0)
    assert t.utilization(0.0, 40.0) == pytest.approx(0.5)
    assert t.bytes_transferred == 200
    assert t.messages == 2


def test_adjacent_intervals_merge():
    t = BandwidthTracker()
    t.record(0.0, 5.0, 10)
    t.record(5.0, 9.0, 10)
    assert t.intervals == [(0.0, 9.0)]


def test_overlapping_intervals_merge():
    t = BandwidthTracker()
    t.record(0.0, 6.0, 10)
    t.record(4.0, 8.0, 10)
    assert t.intervals == [(0.0, 8.0)]
    assert t.busy_time() == pytest.approx(8.0)


def test_out_of_order_start_rejected():
    t = BandwidthTracker()
    t.record(10.0, 20.0, 1)
    with pytest.raises(ValueError):
        t.record(5.0, 12.0, 1)


def test_invalid_interval_rejected():
    t = BandwidthTracker()
    with pytest.raises(ValueError):
        t.record(5.0, 4.0, 1)


def test_windowed_busy_time_clips():
    t = BandwidthTracker()
    t.record(0.0, 10.0, 1)
    assert t.busy_time(5.0, 8.0) == pytest.approx(3.0)
    assert t.busy_time(20.0, 30.0) == 0.0


def test_activity_bounds():
    t = BandwidthTracker()
    assert t.first_activity() == float("inf")
    assert t.last_activity() == 0.0
    t.record(3.0, 7.0, 1)
    assert t.first_activity() == 3.0
    assert t.last_activity() == 7.0


def test_time_series_windows():
    t = BandwidthTracker()
    t.record(0.0, 10.0, 1)
    series = t.time_series(0.0, 20.0, window=10.0)
    assert len(series) == 2
    (c0, u0), (c1, u1) = series
    assert c0 == pytest.approx(5.0) and u0 == pytest.approx(1.0)
    assert c1 == pytest.approx(15.0) and u1 == pytest.approx(0.0)


def test_time_series_rejects_bad_window():
    t = BandwidthTracker()
    with pytest.raises(ValueError):
        t.time_series(0.0, 1.0, window=0.0)


def test_utilization_rejects_empty_window():
    t = BandwidthTracker()
    with pytest.raises(ValueError):
        t.utilization(5.0, 5.0)
