"""Unit tests for the timeline recorder and run reports."""

import pytest

from repro.metrics.timeline import Span, Timeline
from repro.metrics.report import format_run_report


class TestSpan:
    def test_duration(self):
        assert Span("k", 10.0, 35.0).duration_ns == 25.0

    def test_overlap_detection(self):
        a = Span("a", 0.0, 10.0)
        b = Span("b", 5.0, 15.0)
        c = Span("c", 10.0, 20.0)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)


class TestTimeline:
    def test_begin_end_roundtrip(self):
        t = Timeline()
        h = t.begin("gemm", 100.0)
        t.end(h, 500.0)
        assert t.spans() == [Span("gemm", 100.0, 500.0)]

    def test_interleaved_spans(self):
        t = Timeline()
        h1 = t.begin("a", 0.0)
        h2 = t.begin("b", 10.0)
        t.end(h2, 20.0)
        t.end(h1, 30.0)
        names = [s.name for s in t.spans()]
        assert names == ["b", "a"]

    def test_span_for_and_missing(self):
        t = Timeline()
        h = t.begin("x", 0.0)
        t.end(h, 1.0)
        assert t.span_for("x").end_ns == 1.0
        assert t.span_for("y") is None

    def test_overlap_ns(self):
        t = Timeline()
        for name, s, e in (("a", 0.0, 10.0), ("b", 4.0, 12.0),
                           ("c", 20.0, 30.0)):
            h = t.begin(name, s)
            t.end(h, e)
        assert t.overlap_ns("a", "b") == pytest.approx(6.0)
        assert t.overlap_ns("a", "c") == 0.0
        assert t.overlap_ns("a", "missing") == 0.0

    def test_critical_span(self):
        t = Timeline()
        for name, s, e in (("a", 0.0, 50.0), ("b", 10.0, 40.0)):
            h = t.begin(name, s)
            t.end(h, e)
        assert t.critical_span().name == "a"
        assert Timeline().critical_span() is None

    def test_render_ascii(self):
        t = Timeline()
        h = t.begin("gemm", 0.0)
        t.end(h, 1000.0)
        out = t.render(width=20)
        assert "gemm" in out and "#" in out
        assert Timeline().render() == "(empty timeline)"


class TestRunReport:
    def test_report_on_real_run(self):
        from repro.common.config import dgx_h100_config
        from repro.llm.models import LLAMA_7B
        from repro.llm.tiling import TilingConfig
        from repro.llm.tp import sublayer_graph
        from repro.systems import make_system
        model = LLAMA_7B.scaled(0.125)
        tiling = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)
        res = make_system("CAIS", dgx_h100_config(), tiling=tiling).run(
            [sublayer_graph(model, 8, "L1")])
        report = format_run_report(res)
        assert "system: CAIS" in report
        assert "makespan" in report
        assert "in-switch merging" in report
        assert "kernel timeline" in report
        assert "gemm2" in report

    def test_report_without_gantt(self):
        from repro.common.config import dgx_h100_config
        from repro.llm.models import LLAMA_7B
        from repro.llm.tiling import TilingConfig
        from repro.llm.tp import sublayer_graph
        from repro.systems import make_system
        model = LLAMA_7B.scaled(0.125)
        tiling = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)
        res = make_system("TP-NVLS", dgx_h100_config(), tiling=tiling).run(
            [sublayer_graph(model, 8, "L1", style="basic")])
        report = format_run_report(res, gantt=False)
        assert "kernel timeline" not in report
        assert "in-switch merging" not in report   # no merge unit attached
