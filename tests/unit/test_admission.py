"""Unit tests for SLO-aware admission control and degraded-mode serving.

Covers the :class:`~repro.llm.serving.AdmissionController` hysteresis
contract (breach -> gate closes, recovery below the resume threshold ->
gate reopens, empty window reads as recovered), the batcher-level
degradation hooks (capacity clamping, abort-to-re-prefill), the
ServingSpec validation convention, and the end-to-end properties the
resilience figure depends on: shed/defer policies stay deterministic
across repeated runs, defer never loses a request, and shedding only
ever rejects requests with no sunk work.
"""

from dataclasses import replace

import pytest

from repro.common.config import dgx_h100_config
from repro.common.errors import WorkloadError
from repro.llm.models import ModelConfig
from repro.llm.serving import (
    AdmissionController,
    ContinuousBatcher,
    Request,
    ServingSpec,
    generate_requests,
    simulate_serving,
)
from repro.llm.tiling import TilingConfig
from repro.systems import make_system

TINY = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                   seq_len=64, batch=4, layers=4)
TILING = TilingConfig(tile=32, chunk_bytes=32768, red_chunk_bytes=8192)
STYLES = {"TP-NVLS": "basic", "SP-NVLS": "sp", "CAIS": "sp"}


def tiny_spec(seed: int, **overrides) -> ServingSpec:
    base = dict(model="tiny", seed=seed,
                arrival_rate_rps=100_000.0,
                max_arrival_rate_rps=200_000.0,
                horizon_ms=0.05, prompt_min=8, prompt_max=24,
                output_min=1, output_max=3, max_batch_requests=4)
    base.update(overrides)
    return ServingSpec(**base)


def serve(system_name: str, spec: ServingSpec, tp: int = 4):
    config = dgx_h100_config(num_gpus=tp, seed=1)
    system = make_system(system_name, config, tiling=TILING, jitter=False)
    return simulate_serving(system, spec, model=TINY,
                            style=STYLES[system_name])


# ----------------------------------------------------------------------
# AdmissionController hysteresis
# ----------------------------------------------------------------------
def controller(slo=100.0, window=1000.0, resume=0.5):
    return AdmissionController(slo_ttft_ns=slo, window_ns=window,
                               resume_fraction=resume)


def test_gate_opens_until_p95_breaches():
    ctl = controller()
    assert not ctl.update(0.0)                   # empty window: open
    ctl.record(finish_ns=10.0, ttft_ns=90.0)     # within SLO
    assert not ctl.update(20.0)
    ctl.record(finish_ns=30.0, ttft_ns=500.0)    # p95 jumps past 100
    assert ctl.update(40.0)
    assert ctl.breaches == 1 and ctl.resumes == 0


def test_gate_holds_between_resume_and_slo():
    """Hysteresis: a p95 back under the SLO but above resume_fraction *
    SLO keeps the gate closed — no flapping at the target."""
    ctl = controller(slo=100.0, window=1000.0, resume=0.5)
    ctl.record(10.0, 500.0)
    assert ctl.update(20.0)                      # breached
    ctl.record(30.0, 80.0)                       # p95 now 500 -> still gated
    ctl.record(40.0, 80.0)
    ctl.record(50.0, 80.0)
    # Slide the window past the 500 ns sample: p95 becomes 80, which is
    # below the SLO but above resume (50) — the gate must stay closed...
    assert ctl.update(1015.0)
    assert ctl.gated
    # ...until the samples age out entirely (empty window -> p95 = 0).
    assert not ctl.update(1100.0)
    assert ctl.resumes == 1


def test_gate_reopens_below_resume_threshold():
    ctl = controller(slo=100.0, window=1000.0, resume=0.8)
    ctl.record(10.0, 500.0)
    assert ctl.update(20.0)
    for t in range(30, 90, 10):                  # bury the spike in fast
        ctl.record(float(t), 10.0)               # completions
    # Window still holds the 500 sample at t=100 (p95 = 500, gated)...
    assert ctl.update(100.0)
    # ...but once it expires, p95 = 10 <= 80 reopens the gate.
    assert not ctl.update(1015.0)
    assert ctl.breaches == 1 and ctl.resumes == 1


def test_empty_window_always_reopens():
    """Liveness: with no completions inside the window the controller
    must read p95 = 0 and open the gate, whatever closed it."""
    ctl = controller()
    ctl.record(10.0, 1e9)
    assert ctl.update(20.0)
    assert not ctl.update(2000.0)                # sample aged out
    assert ctl.windowed_p95_ns(2000.0) == 0.0


def test_next_expiry_tracks_oldest_sample():
    ctl = controller(window=1000.0)
    assert ctl.next_expiry_ns(0.0) is None
    ctl.record(10.0, 50.0)
    ctl.record(200.0, 50.0)
    assert ctl.next_expiry_ns(100.0) == 10.0 + 1000.0
    # Past the first expiry the second sample is the oldest.
    assert ctl.next_expiry_ns(1050.0) == 200.0 + 1000.0
    # Once every sample has aged out there is nothing to wake for.
    assert ctl.next_expiry_ns(1500.0) is None


# ----------------------------------------------------------------------
# Batcher degradation hooks
# ----------------------------------------------------------------------
def batcher_with(requests, **spec_overrides):
    spec = tiny_spec(0, **spec_overrides)
    return ContinuousBatcher(spec, TINY, requests)


def reqs(n, prompt=8, output=2, gap_ns=100.0):
    return [Request(rid=i, arrival_ns=i * gap_ns, prompt_len=prompt,
                    output_len=output) for i in range(n)]


def test_degrade_capacity_clamps_batch_and_counts_replans():
    b = batcher_with(reqs(4), max_batch_requests=8)
    assert b.effective_max_batch() == 8
    b.degrade_capacity(0.5)
    assert b.effective_max_batch() == 4
    assert b.replans == 1
    b.degrade_capacity(0.5)                      # no change: no replan
    assert b.replans == 1
    b.degrade_capacity(0.0)                      # floor: never below one
    assert b.effective_max_batch() == 1
    b.degrade_capacity(1.0)                      # recovery counts too
    assert b.effective_max_batch() == 8
    assert b.replans == 3


def test_degraded_capacity_evicts_overflow_but_never_oldest():
    b = batcher_with(reqs(4, gap_ns=0.0), max_batch_requests=4)
    plan = b.plan_iteration(0.0)
    assert len(plan) == 4
    b.degrade_capacity(0.25)                     # survivors: 1 slot
    plan = b.plan_iteration(1.0)
    assert len(plan) == 1
    assert plan[0][0].stats.rid == 0             # oldest kept running
    assert b.evictions == 3
    # Evicted requests requeue with full re-prefill state.
    assert all(a.prefill_pending == a.stats.prompt_len for a in b.waiting)


def test_abort_requeues_with_reprefill_accounting():
    b = batcher_with(reqs(3, gap_ns=0.0), max_batch_requests=4)
    b.plan_iteration(0.0)
    b.commit(b.plan_iteration(0.0), end_ns=10.0)  # warm KV, 1 token each
    victim = b.running[2]
    assert b.abort_request(victim.stats.rid, now_ns=20.0)
    assert victim in b.waiting
    assert victim.stats.aborts == 1
    assert b.aborts == 1
    # Re-prefill must replay prompt + tokens emitted so far.
    expected = victim.stats.prompt_len + victim.emitted
    assert victim.prefill_pending == expected
    assert b.reprefill_tokens == expected


def test_abort_never_touches_oldest_or_unknown():
    b = batcher_with(reqs(2, gap_ns=0.0), max_batch_requests=4)
    b.plan_iteration(0.0)
    head = b.running[0].stats.rid
    assert not b.abort_request(head, now_ns=1.0)   # progress guarantee
    assert not b.abort_request(999, now_ns=1.0)    # not running
    assert b.aborts == 0 and not b.waiting


def test_shed_only_rejects_fresh_requests():
    b = batcher_with(reqs(3, gap_ns=0.0), max_batch_requests=4)
    b.release_arrivals(0.0)
    b.waiting[1].stats.evictions = 1             # sunk work: protected
    b.waiting[2].emitted = 1
    b._shed_fresh_waiting(5.0)
    assert [a.stats.rid for a in b.shed] == [0]
    assert [a.stats.rid for a in b.waiting] == [1, 2]
    assert b.shed[0].stats.shed
    assert b.shed[0].stats.finish_ns == 5.0


# ----------------------------------------------------------------------
# ServingSpec validation convention (FaultSpec-style messages)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("field,value", [
    ("arrival_rate_rps", 0.0),
    ("horizon_ms", -1.0),
    ("prompt_min", 0),
    ("output_min", 0),
    ("max_batch_requests", 0),
    ("admission_policy", "drop"),
    ("admission_window_ms", 0.0),
    ("resume_fraction", 1.5),
    ("retry_budget", 0),
])
def test_serving_spec_validation_names_offending_field(field, value):
    overrides = {field: value}
    if field in ("admission_window_ms", "resume_fraction"):
        overrides.update(admission_policy="shed", slo_ttft_ms=1.0)
    with pytest.raises(WorkloadError) as err:
        tiny_spec(0, **overrides)
    # FaultSpec convention: the message names the offending field (range
    # checks name the pair, e.g. prompt_min..prompt_max) and its value.
    assert f"ServingSpec.{field}" in str(err.value)
    assert repr(value) in str(err.value)


def test_admission_policy_requires_slo_target():
    with pytest.raises(WorkloadError) as err:
        tiny_spec(0, admission_policy="shed")
    assert "ServingSpec.slo_ttft_ms" in str(err.value)


# ----------------------------------------------------------------------
# End-to-end: deterministic shedding, defer liveness
# ----------------------------------------------------------------------
def shed_spec(seed: int, policy: str = "shed") -> ServingSpec:
    # SLO far below any real TTFT: the gate closes after the first
    # completion lands, so the policy under test definitely engages.
    return tiny_spec(seed, admission_policy=policy, slo_ttft_ms=1e-5,
                     admission_window_ms=1e-3)


@pytest.mark.parametrize("seed", range(5))
def test_shed_policy_is_deterministic_across_runs(seed):
    spec = shed_spec(seed)
    a = serve("CAIS", spec)
    b = serve("CAIS", spec)
    assert a.shed and a.run.details["serving.shed"] > 0
    assert [s.rid for s in a.shed] == [s.rid for s in b.shed]
    assert a.stats == b.stats
    assert a.makespan_ns == b.makespan_ns
    assert a.run.details == b.run.details


def test_shed_requests_count_against_attainment():
    res = serve("TP-NVLS", shed_spec(2))
    offered = len(res.stats) + len(res.shed)
    assert offered == len(generate_requests(shed_spec(2)))
    slo_ns = shed_spec(2).slo_ttft_ms * 1e6
    assert res.slo_attainment(slo_ns) <= len(res.stats) / offered
    for s in res.shed:                           # shed: never served
        assert s.first_token_ns is None and s.shed


def test_defer_policy_serves_every_request():
    """Defer gates admission but never rejects: the run must still
    complete with every generated request fully served."""
    spec = shed_spec(3, policy="defer")
    res = serve("TP-NVLS", spec)
    requests = generate_requests(spec)
    assert not res.shed
    assert len(res.stats) == len(requests)
    assert res.total_output_tokens == sum(r.output_len for r in requests)
    assert res.deferred_iterations > 0
    assert res.run.details["serving.deferred_iterations"] > 0


def test_inert_spec_matches_pre_resilience_details():
    """With admission off and no retry budget the result must carry none
    of the resilience detail keys — byte-identity with older runs."""
    res = serve("TP-NVLS", tiny_spec(1))
    for key in ("serving.shed", "serving.aborts", "serving.replans",
                "serving.slo_attainment", "serving.capacity_factor"):
        assert key not in res.run.details
