"""Unit tests for the fleet layer's pure parts (repro.llm.fleet).

Everything here runs without a simulation: spec validation, the
deterministic router policies, stage-1/stage-2 planning arithmetic
(including the KV-handoff charge), the flat request/stats encodings that
travel through pool workers, fingerprint separation for replica tasks,
and the conservation checks inside ``aggregate_fleet``.  The suites that
*do* simulate live in tests/properties/test_fleet_invariants.py and
test_fleet_metamorphic.py.
"""

import pytest

from repro.common.config import dgx_h100_config
from repro.common.errors import SimulationError, WorkloadError
from repro.experiments.parallel import RunSummary, SimTask
from repro.experiments.runner import Scale
from repro.llm.fleet import (
    FleetSpec,
    ReplicaOutcome,
    ReplicaSpec,
    Router,
    aggregate_fleet,
    decode_request_stats,
    encode_request_stats,
    encode_requests,
    plan_decode,
    plan_fleet,
    prefix_bucket,
)
from repro.llm.models import ModelConfig
from repro.llm.serving import (
    Request,
    RequestStats,
    ServingSpec,
    generate_requests,
    kv_bytes_per_token,
)
from repro.llm.tiling import TilingConfig

TINY = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                   seq_len=64, batch=4, layers=4)
KVPT = kv_bytes_per_token(TINY)
SCALE = Scale(tokens_fraction=1.0,
              tiling=TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192))


def tiny_spec(seed: int = 3, **overrides) -> ServingSpec:
    base = dict(model="tiny", seed=seed, arrival_rate_rps=100_000.0,
                max_arrival_rate_rps=200_000.0, horizon_ms=0.05,
                prompt_min=8, prompt_max=24, output_min=1, output_max=3,
                max_batch_requests=4)
    base.update(overrides)
    return ServingSpec(**base)


def tiny_fleet(**overrides) -> FleetSpec:
    base = dict(serving=tiny_spec(), replicas=3)
    base.update(overrides)
    return FleetSpec(**base)


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------

class TestFleetSpecValidation:
    @pytest.mark.parametrize("bad", [
        dict(replicas=0),
        dict(policy="weighted"),
        dict(replicas=2, routing=False),
        dict(replicas=1, prefill_replicas=1),   # no decode pool left
        dict(replicas=4, prefill_replicas=4),
        dict(replicas=4, prefill_replicas=-1),
        dict(epoch_ms=0.0),
        dict(handoff_gbps=0.0),
        dict(handoff_base_ns=-1.0),
        dict(prefix_buckets=0),
        dict(router_decay=1.5),
    ])
    def test_rejects(self, bad):
        with pytest.raises(WorkloadError, match="FleetSpec"):
            tiny_fleet(**bad)

    def test_error_names_the_field(self):
        with pytest.raises(WorkloadError, match="FleetSpec.policy="):
            tiny_fleet(policy="weighted")

    def test_one_replica_routing_disabled_is_legal(self):
        fleet = tiny_fleet(replicas=1, routing=False)
        assert not fleet.disaggregated
        assert fleet.decode_replicas == 1

    def test_disaggregation_accessors(self):
        fleet = tiny_fleet(replicas=4, prefill_replicas=1)
        assert fleet.disaggregated
        assert fleet.decode_replicas == 3

    def test_handoff_cost_model(self):
        fleet = tiny_fleet(handoff_gbps=50.0, handoff_base_ns=2000.0)
        # base + bytes / (GB/s): 5 GB at 50 GB/s = 0.1 s = 1e8 ns.
        assert fleet.handoff_ns(5 * 10 ** 9) == \
            pytest.approx(2000.0 + 1e8)
        assert fleet.handoff_ns(0) == 2000.0


# ---------------------------------------------------------------------------
# Router policies (pure, no simulation)
# ---------------------------------------------------------------------------

def _requests(n, spacing_ns=10.0, prompt=8, output=2):
    return [Request(rid=i, arrival_ns=i * spacing_ns, prompt_len=prompt,
                    output_len=output) for i in range(n)]


class TestRouter:
    def test_round_robin_cycles(self):
        router = Router(tiny_fleet(policy="round-robin"), pool=3,
                        kvpt=KVPT)
        picks = [router.route(r, bucket=0) for r in _requests(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_prefix_affinity_follows_bucket(self):
        router = Router(tiny_fleet(policy="prefix-affinity"), pool=3,
                        kvpt=KVPT)
        reqs = _requests(6)
        picks = [router.route(r, bucket=b)
                 for r, b in zip(reqs, (0, 5, 0, 5, 2, 7))]
        assert picks == [0, 2, 0, 2, 2, 1]

    def test_least_kv_prefers_lowest_estimate(self):
        router = Router(tiny_fleet(policy="least-kv"), pool=2, kvpt=KVPT)
        a, b, c = _requests(3, spacing_ns=1.0, prompt=8, output=2)
        assert router.route(a, 0) == 0          # ties break to index 0
        assert router.route(b, 0) == 1          # 0 now loaded
        # Replica 1 carries the bigger request; next goes to 0.
        big = Request(rid=9, arrival_ns=2.0, prompt_len=64, output_len=8)
        router.outstanding[1] += 100 * KVPT
        assert router.route(big, 0) == 0

    def test_least_kv_decays_once_per_epoch(self):
        fleet = tiny_fleet(policy="least-kv", epoch_ms=0.001,
                           router_decay=0.5)
        router = Router(fleet, pool=2, kvpt=KVPT)
        first = Request(rid=0, arrival_ns=0.0, prompt_len=10, output_len=0)
        router.route(first, 0)
        loaded = router.outstanding[0]
        assert loaded == 10 * KVPT
        # Two epoch boundaries (epoch_ms=1us -> 2us later) halve twice.
        later = Request(rid=1, arrival_ns=2_000.0, prompt_len=1,
                        output_len=0)
        router.route(later, 0)
        assert router.outstanding[0] >= loaded * 0.25
        assert router.outstanding[0] < loaded * 0.25 + 2 * KVPT

    def test_decisions_read_only_router_state(self):
        """Same stream, same picks — routing is a pure function of the
        offered stream, never of replica execution."""
        for policy in ("round-robin", "least-kv", "prefix-affinity"):
            fleet = tiny_fleet(policy=policy)
            reqs = _requests(20)
            picks = [
                [Router(fleet, 3, KVPT).route(r, r.rid % 8) for r in reqs]
                for _ in range(2)]
            # Rebuild per run: two fresh routers agree pick for pick.
            a = Router(fleet, 3, KVPT)
            b = Router(fleet, 3, KVPT)
            assert [a.route(r, r.rid % 8) for r in reqs] == \
                [b.route(r, r.rid % 8) for r in reqs]
            assert picks[0] == picks[1]

    def test_empty_pool_rejected(self):
        with pytest.raises(WorkloadError, match="pool"):
            Router(tiny_fleet(), pool=0, kvpt=KVPT)


def test_prefix_bucket_is_deterministic_and_in_range():
    seen = set()
    for rid in range(64):
        b = prefix_bucket(7, rid, 16)
        assert b == prefix_bucket(7, rid, 16)
        assert 0 <= b < 16
        seen.add(b)
    assert len(seen) > 4          # uniform-ish, not constant
    assert prefix_bucket(7, 0, 16) != prefix_bucket(8, 0, 16) or \
        prefix_bucket(7, 1, 16) != prefix_bucket(8, 1, 16)


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

class TestPlanFleet:
    def test_assignment_covers_every_request(self):
        fleet = tiny_fleet()
        plan = plan_fleet(fleet, model=TINY)
        rids = {r.rid for r in generate_requests(fleet.serving)}
        assert set(plan.assignment) == rids
        assert set(plan.buckets) == rids
        planned = {int(t[0]) for rs in plan.stage1 for t in rs.requests}
        assert planned == rids

    def test_routing_disabled_passes_stream_through(self):
        fleet = tiny_fleet(replicas=1, routing=False)
        plan = plan_fleet(fleet, model=TINY)
        assert len(plan.stage1) == 1
        assert plan.stage1[0].to_requests() == \
            generate_requests(fleet.serving)
        assert set(plan.assignment.values()) == {0}

    def test_replica_requests_keep_arrival_order(self):
        plan = plan_fleet(tiny_fleet(), model=TINY)
        for rs in plan.stage1:
            arrivals = [t[1] for t in rs.requests]
            assert arrivals == sorted(arrivals)

    def test_disaggregated_stage1_prefills_one_token(self):
        fleet = tiny_fleet(replicas=3, prefill_replicas=1)
        plan = plan_fleet(fleet, model=TINY)
        assert {rs.role for rs in plan.stage1} == {"prefill"}
        assert all(t[3] == 1 for rs in plan.stage1 for t in rs.requests)
        # Original output lengths survive in the plan for stage 2.
        assert any(r.output_len > 1 for r in plan.requests)

    def test_empty_replicas_get_no_run(self):
        # 8 requests over 64 replicas: most replicas receive nothing and
        # must not produce a (crashing) zero-request simulation task.
        plan = plan_fleet(tiny_fleet(replicas=64), model=TINY)
        assert 0 < len(plan.stage1) <= 8
        assert all(rs.requests for rs in plan.stage1)


class TestPlanDecode:
    def _prefill_stats(self, plan, shed_rids=()):
        out = []
        for r in plan.requests:
            shed = r.rid in shed_rids
            out.append(RequestStats(
                rid=r.rid, arrival_ns=r.arrival_ns,
                prompt_len=r.prompt_len, output_len=1,
                first_token_ns=None if shed else r.arrival_ns + 50.0,
                finish_ns=None if shed else r.arrival_ns + 100.0,
                shed=shed))
        return out

    def test_handoff_arithmetic(self):
        fleet = tiny_fleet(replicas=3, prefill_replicas=1,
                           handoff_gbps=10.0, handoff_base_ns=500.0)
        plan = plan_fleet(fleet, model=TINY)
        stage2 = plan_decode(plan, self._prefill_stats(plan))
        originals = {r.rid: r for r in plan.requests}
        decoded = {int(t[0]): t for rs in stage2 for t in rs.requests}
        for rid, (_, arrival, prompt, output, warm) in decoded.items():
            orig = originals[rid]
            kv = (orig.prompt_len + 1) * KVPT
            handoff = 500.0 + kv / 10.0
            assert plan.handoffs[rid] == (handoff, kv)
            assert arrival == pytest.approx(
                orig.arrival_ns + 100.0 + handoff)
            assert prompt == orig.prompt_len + 1
            assert output == orig.output_len - 1
            assert warm is True
        # Only multi-token, non-shed requests reach the decode pool.
        expected = {r.rid for r in plan.requests if r.output_len > 1}
        assert set(decoded) == expected

    def test_shed_and_single_token_requests_skip_decode(self):
        fleet = tiny_fleet(replicas=3, prefill_replicas=1)
        plan = plan_fleet(fleet, model=TINY)
        victim = next(r.rid for r in plan.requests if r.output_len > 1)
        stage2 = plan_decode(plan, self._prefill_stats(plan, {victim}))
        decoded = {int(t[0]) for rs in stage2 for t in rs.requests}
        assert victim not in decoded
        assert all(r.rid not in decoded
                   for r in plan.requests if r.output_len <= 1)

    def test_decode_pool_never_sheds(self):
        fleet = tiny_fleet(serving=tiny_spec(admission_policy="shed",
                                             slo_ttft_ms=1.0),
                           replicas=3, prefill_replicas=1)
        plan = plan_fleet(fleet, model=TINY)
        stage2 = plan_decode(plan, self._prefill_stats(plan))
        assert all(rs.spec.admission_policy == "none" for rs in stage2)

    def test_rejects_undisaggregated_plan(self):
        plan = plan_fleet(tiny_fleet(), model=TINY)
        with pytest.raises(WorkloadError, match="undisaggregated"):
            plan_decode(plan, [])


# ---------------------------------------------------------------------------
# Encodings
# ---------------------------------------------------------------------------

class TestEncodings:
    def test_request_round_trip(self):
        reqs = [Request(rid=3, arrival_ns=1.5, prompt_len=8, output_len=2),
                Request(rid=4, arrival_ns=2.5, prompt_len=9, output_len=1,
                        warm=True)]
        rs = ReplicaSpec(role="replica", index=0, spec=tiny_spec(),
                         requests=encode_requests(reqs))
        assert rs.to_requests() == reqs

    def test_stats_round_trip_including_shed(self):
        stats = [
            RequestStats(rid=0, arrival_ns=1.0, prompt_len=8,
                         output_len=2, first_token_ns=5.0, finish_ns=9.0,
                         evictions=1, aborts=2),
            RequestStats(rid=1, arrival_ns=2.0, prompt_len=9,
                         output_len=3, shed=True),
        ]
        class FakeServing:
            pass
        fake = FakeServing()
        fake.stats = [stats[0]]
        fake.shed = [stats[1]]
        rows = encode_request_stats(fake)
        assert decode_request_stats(rows) == stats
        # Rows are JSON-flat floats, sorted by rid.
        assert [r[0] for r in rows] == [0.0, 1.0]
        assert all(isinstance(x, float) for row in rows for x in row)

    def test_run_summary_round_trips_request_stats(self):
        summary = RunSummary(
            system="CAIS", makespan_ns=10.0, compute_ns=5.0,
            tbs_completed=1, events=2, gpu_utilization=0.5,
            avg_bandwidth_utilization=0.5, link_bytes_total=1,
            merge_peak_bytes_per_port=0.0, merge_average_wait_ns=0.0,
            request_stats=((0.0, 1.0, 8.0, 2.0, 5.0, 9.0, 0.0, 0.0, 0.0),))
        again = RunSummary.from_dict(summary.to_dict())
        assert again == summary
        assert RunSummary.from_dict(
            RunSummary(system="CAIS", makespan_ns=1.0, compute_ns=1.0,
                       tbs_completed=0, events=0, gpu_utilization=0.0,
                       avg_bandwidth_utilization=0.0, link_bytes_total=0,
                       merge_peak_bytes_per_port=0.0,
                       merge_average_wait_ns=0.0).to_dict()
        ).request_stats is None


# ---------------------------------------------------------------------------
# Fingerprints (cache schema v5)
# ---------------------------------------------------------------------------

class TestFingerprints:
    def _task(self, replica):
        return SimTask(system="CAIS", graphs=(),
                       config=dgx_h100_config(seed=1), scale=SCALE,
                       replica=replica)

    def test_replica_tasks_never_alias_serving_tasks(self):
        plan = plan_fleet(tiny_fleet(replicas=1, routing=False),
                          model=TINY)
        replica_fp = self._task(plan.stage1[0]).fingerprint()
        serving_fp = SimTask(system="CAIS", graphs=(),
                             config=dgx_h100_config(seed=1), scale=SCALE,
                             serving=tiny_spec()).fingerprint()
        assert replica_fp != serving_fp

    def test_fingerprint_sees_routing_differences(self):
        fps = set()
        for policy in ("round-robin", "least-kv", "prefix-affinity"):
            plan = plan_fleet(tiny_fleet(policy=policy), model=TINY)
            fps.update(self._task(rs).fingerprint()
                       for rs in plan.stage1)
        # 3 policies x up-to-3 replicas, all distinct request splits or
        # indices — no two replica runs may share a cache entry unless
        # their request lists are identical.
        by_requests = {}
        for policy in ("round-robin", "least-kv", "prefix-affinity"):
            for rs in plan_fleet(tiny_fleet(policy=policy),
                                 model=TINY).stage1:
                by_requests.setdefault(rs.requests, set()).add(
                    self._task(rs).fingerprint())
        for prints in by_requests.values():
            assert len(prints) == 1
        assert len({next(iter(v)) for v in by_requests.values()}) == \
            len(by_requests)

    def test_fingerprint_sees_role_and_index(self):
        rs = plan_fleet(tiny_fleet(replicas=1, routing=False),
                        model=TINY).stage1[0]
        import dataclasses
        other = dataclasses.replace(rs, role="decode")
        shifted = dataclasses.replace(rs, index=1)
        fps = {self._task(r).fingerprint() for r in (rs, other, shifted)}
        assert len(fps) == 3


# ---------------------------------------------------------------------------
# Aggregation + conservation
# ---------------------------------------------------------------------------

def _outcomes_for(plan):
    outcomes = []
    for rs in plan.stage1:
        stats = [RequestStats(
            rid=int(t[0]), arrival_ns=t[1], prompt_len=int(t[2]),
            output_len=int(t[3]), first_token_ns=t[1] + 10.0,
            finish_ns=t[1] + 20.0) for t in rs.requests]
        outcomes.append(ReplicaOutcome(
            role=rs.role, index=rs.index, makespan_ns=100.0 + rs.index,
            details={"serving.requests": float(len(stats))},
            stats=stats))
    return outcomes


class TestAggregate:
    def test_zero_rows_for_idle_replicas(self):
        plan = plan_fleet(tiny_fleet(replicas=64), model=TINY)
        result = aggregate_fleet(plan, _outcomes_for(plan))
        assert len(result.per_replica) == 64
        idle = [row for row in result.per_replica
                if row["requests"] == 0.0]
        assert idle and all(row["makespan_ns"] == 0.0 for row in idle)
        assert result.makespan_ns == max(
            o.makespan_ns for o in _outcomes_for(plan))

    def test_shed_counts_against_attainment(self):
        plan = plan_fleet(tiny_fleet(), model=TINY)
        outcomes = _outcomes_for(plan)
        victim = outcomes[0].stats[0]
        victim.shed = True
        victim.first_token_ns = victim.finish_ns = None
        result = aggregate_fleet(plan, outcomes)
        n = result.offered
        assert len(result.shed) == 1
        # Everyone else met any generous SLO; the shed one still counts.
        assert result.slo_attainment(1e12) == pytest.approx((n - 1) / n)

    def test_duplicate_report_is_conservation_violation(self):
        plan = plan_fleet(tiny_fleet(), model=TINY)
        outcomes = _outcomes_for(plan)
        outcomes.append(ReplicaOutcome(
            role="replica", index=2, makespan_ns=1.0, details={},
            stats=[outcomes[0].stats[0]]))
        with pytest.raises(SimulationError, match="twice"):
            aggregate_fleet(plan, outcomes)

    def test_vanished_request_is_conservation_violation(self):
        plan = plan_fleet(tiny_fleet(), model=TINY)
        outcomes = _outcomes_for(plan)
        outcomes[0].stats.pop()
        with pytest.raises(SimulationError, match="vanished"):
            aggregate_fleet(plan, outcomes)

    def test_unknown_request_is_conservation_violation(self):
        plan = plan_fleet(tiny_fleet(), model=TINY)
        outcomes = _outcomes_for(plan)
        outcomes[0].stats.append(RequestStats(
            rid=10 ** 6, arrival_ns=0.0, prompt_len=1, output_len=1,
            first_token_ns=1.0, finish_ns=2.0))
        with pytest.raises(SimulationError, match="unknown"):
            aggregate_fleet(plan, outcomes)
