"""Unit tests for the memory controller and GPU-side synchronizer."""

import pytest

from repro.cais.coordination import GroupSyncTable, SyncPhase
from repro.common.config import GpuSpec, dgx_h100_config
from repro.common.errors import ProtocolError
from repro.common.events import Simulator
from repro.gpu.memory import MemoryController
from repro.gpu.synchronizer import Synchronizer
from repro.interconnect.message import Address, Message, Op, gpu_node
from repro.interconnect.network import Network


def make_mc(local_value_fn=None):
    sim = Simulator()
    sent = []
    mc = MemoryController(sim, gpu_index=0, spec=GpuSpec(),
                          send=sent.append, local_value_fn=local_value_fn)
    return sim, mc, sent


class TestChunkCache:
    def test_miss_issues_single_fetch(self):
        sim, mc, sent = make_mc()
        got = []
        addr = Address(1, 0)
        assert mc.fetch_remote(addr, 1024, True, 7, got.append) is True
        assert mc.fetch_remote(addr, 1024, True, 7, got.append) is False
        assert len(sent) == 1
        assert sent[0].op is Op.LD_CAIS_REQ
        assert mc.remote_fetches == 1

    def test_waiters_fire_on_fill(self):
        sim, mc, sent = make_mc()
        got = []
        addr = Address(1, 0)
        mc.fetch_remote(addr, 1024, True, 7, got.append)
        mc.fetch_remote(addr, 1024, True, 7, got.append)
        resp = Message(Op.LD_CAIS_RESP, gpu_node(1), gpu_node(0),
                       address=addr, payload=3.5, payload_bytes=1024)
        assert mc.handle(resp)
        assert got == [3.5, 3.5]

    def test_hit_after_fill_is_immediate(self):
        sim, mc, sent = make_mc()
        addr = Address(1, 0)
        mc.fetch_remote(addr, 64, True, 7, lambda v: None)
        mc.handle(Message(Op.LD_CAIS_RESP, gpu_node(1), gpu_node(0),
                          address=addr, payload=1.0))
        got = []
        mc.fetch_remote(addr, 64, True, 7, got.append)
        assert got == [1.0]
        assert mc.cache_hits == 1

    def test_would_fetch(self):
        sim, mc, sent = make_mc()
        addr = Address(1, 0)
        assert mc.would_fetch(addr)
        mc.fetch_remote(addr, 64, True, 7, lambda v: None)
        assert not mc.would_fetch(addr)

    def test_unmergeable_fetch_is_direct(self):
        sim, mc, sent = make_mc()
        mc.fetch_remote(Address(1, 0), 64, False, 1, lambda v: None)
        assert sent[0].op is Op.LOAD_REQ
        assert sent[0].meta["direct"]

    def test_unexpected_fill_raises(self):
        sim, mc, sent = make_mc()
        with pytest.raises(ProtocolError):
            mc.handle(Message(Op.LD_CAIS_RESP, gpu_node(1), gpu_node(0),
                              address=Address(1, 0)))

    def test_invalidate_keeps_pending_lines(self):
        sim, mc, sent = make_mc()
        ready, pending = Address(1, 0), Address(1, 64)
        mc.fetch_remote(ready, 64, True, 7, lambda v: None)
        mc.handle(Message(Op.LD_CAIS_RESP, gpu_node(1), gpu_node(0),
                          address=ready))
        mc.fetch_remote(pending, 64, True, 7, lambda v: None)
        mc.invalidate_cache()
        assert mc.would_fetch(ready)        # dropped
        assert not mc.would_fetch(pending)  # still in flight


class TestReductionSink:
    def test_expected_then_contributions(self):
        sim, mc, sent = make_mc()
        addr = Address(0, 0)
        got = []
        mc.expect_reduction(addr, 3, got.append)
        mc.add_local_contribution(addr, 1.0)
        mc.handle(Message(Op.STORE, gpu_node(1), gpu_node(0), address=addr,
                          payload=2.0,
                          meta={"reduced": True, "contributions": 2}))
        assert got == [3.0]

    def test_contributions_before_registration(self):
        sim, mc, sent = make_mc()
        addr = Address(0, 0)
        mc.add_local_contribution(addr, 5.0)
        got = []
        mc.expect_reduction(addr, 1, got.append)
        assert got == [5.0]

    def test_expected_mismatch_raises(self):
        sim, mc, sent = make_mc()
        addr = Address(0, 0)
        mc.expect_reduction(addr, 3, lambda v: None)
        with pytest.raises(ProtocolError):
            mc.expect_reduction(addr, 4, lambda v: None)

    def test_reduction_value_inspection(self):
        sim, mc, sent = make_mc()
        addr = Address(0, 0)
        mc.add_local_contribution(addr, 2.0)
        assert mc.reduction_value(addr) == 2.0
        assert mc.reduction_value(Address(0, 64)) is None


class TestFillService:
    def test_merge_fill_served_after_hbm_latency(self):
        sim, mc, sent = make_mc(local_value_fn=lambda a: 9.0)
        req = Message(Op.LOAD_REQ, ("sw", 0), gpu_node(0),
                      address=Address(0, 0),
                      meta={"merge_fill": True, "chunk_bytes": 512})
        mc.handle(req)
        assert not sent
        sim.run()
        assert sim.now == pytest.approx(GpuSpec().hbm_latency_ns)
        assert sent[0].op is Op.LD_CAIS_RESP
        assert sent[0].payload == 9.0
        assert sent[0].meta["merge_fill"]

    def test_direct_fill_targets_requester(self):
        sim, mc, sent = make_mc()
        req = Message(Op.LOAD_REQ, ("sw", 0), gpu_node(0),
                      address=Address(0, 0),
                      meta={"direct": True, "requester": 5,
                            "chunk_bytes": 128})
        mc.handle(req)
        sim.run()
        assert sent[0].op is Op.LOAD_RESP
        assert sent[0].dst == gpu_node(5)

    def test_gather_service(self):
        sim, mc, sent = make_mc(local_value_fn=lambda a: 4.0)
        req = Message(Op.MULTIMEM_LD_REDUCE_GATHER, ("sw", 0), gpu_node(0),
                      address=Address(0, 0),
                      meta={"requester": 2, "chunk_bytes": 256})
        mc.handle(req)
        sim.run()
        assert sent[0].op is Op.MULTIMEM_LD_REDUCE_RESP
        assert sent[0].meta["nvls_pull"]
        assert sent[0].payload == 4.0


class TestStoreSink:
    def test_callback_after_store(self):
        sim, mc, sent = make_mc()
        addr = Address(0, 0)
        got = []
        mc.on_chunk_stored(addr, got.append)
        mc.handle(Message(Op.STORE, gpu_node(1), gpu_node(0), address=addr,
                          payload="x"))
        assert got == ["x"]

    def test_callback_when_already_stored(self):
        sim, mc, sent = make_mc()
        addr = Address(0, 0)
        mc.handle(Message(Op.STORE, gpu_node(1), gpu_node(0), address=addr))
        got = []
        mc.on_chunk_stored(addr, got.append)
        assert got == [None]


class TestSynchronizer:
    def make(self, num_gpus=4):
        sim = Simulator()
        cfg = dgx_h100_config(num_gpus=num_gpus)
        net = Network(sim, cfg)
        table = GroupSyncTable(release_timeout_ns=None)
        for sw in net.switches:
            sw.attach_engine(table)
        syncs = [Synchronizer(net, g) for g in range(num_gpus)]
        for g, sync in enumerate(syncs):
            net.register_gpu(g, lambda m, s=sync: s.handle(m))
        return sim, syncs

    def test_release_fires_all_waiters(self):
        sim, syncs = self.make()
        fired = []
        for g, sync in enumerate(syncs):
            sync.request_sync(5, SyncPhase.ACCESS, 4,
                              lambda g=g: fired.append(g))
        sim.run()
        assert sorted(fired) == [0, 1, 2, 3]

    def test_duplicate_waiters_share_one_request(self):
        sim, syncs = self.make()
        fired = []
        syncs[0].request_sync(7, SyncPhase.LAUNCH, 4, lambda: fired.append(1))
        syncs[0].request_sync(7, SyncPhase.LAUNCH, 4, lambda: fired.append(2))
        assert syncs[0].syncs_requested == 1
        for sync in syncs[1:]:
            sync.request_sync(7, SyncPhase.LAUNCH, 4, lambda: None)
        sim.run()
        assert sorted(fired) == [1, 2]

    def test_spurious_credit_ignored_without_throttle(self):
        sim, syncs = self.make()
        msg = Message(Op.CREDIT, ("sw", 0), gpu_node(0))
        assert syncs[0].handle(msg) is True   # consumed, harmless
