"""Unit tests for the ISA surface, topology description, and area model."""

import pytest

from repro.cais.compiler import MemOpKind
from repro.cais.isa import (
    CAIS_OPS, REQUEST_OP, is_cais_request, mnemonic)
from repro.common.config import LinkSpec, SwitchSpec, dgx_h100_config
from repro.common.errors import ConfigError
from repro.hw.area import (
    gpu_synchronizer_area, overhead_report, switch_merge_unit_area)
from repro.interconnect.message import Message, Op, gpu_node
from repro.interconnect.topology import Topology, dgx_h100_topology


class TestIsa:
    def test_request_op_mapping_covers_all_kinds(self):
        assert set(REQUEST_OP) == set(MemOpKind)
        assert REQUEST_OP[MemOpKind.LOAD_CAIS] is Op.LD_CAIS_REQ
        assert REQUEST_OP[MemOpKind.REDUCE_CAIS] is Op.RED_CAIS

    def test_cais_flag_detection(self):
        cais = Message(Op.RED_CAIS, gpu_node(0), gpu_node(1))
        plain = Message(Op.STORE, gpu_node(0), gpu_node(1))
        assert is_cais_request(cais)
        assert not is_cais_request(plain)

    def test_cais_variants_flagged(self):
        for op in CAIS_OPS:
            assert "cais" in op.value

    def test_mnemonics(self):
        assert mnemonic(MemOpKind.LOAD) == "ld.global"
        assert mnemonic(MemOpKind.LOAD_CAIS) == "ld.global.cais"
        assert mnemonic(MemOpKind.REDUCE_CAIS) == "red.global.cais"


class TestTopology:
    def test_dgx_wiring_fully_connected(self):
        topo = dgx_h100_topology(dgx_h100_config())
        links = topo.links()
        assert len(links) == 8 * 4
        assert (0, 0) in links and (7, 3) in links

    def test_bandwidth_aggregates(self):
        topo = Topology(num_gpus=8, num_switches=4,
                        link=LinkSpec(bandwidth_gbps=16.0))
        assert topo.per_gpu_bandwidth_gbps() == pytest.approx(64.0)
        assert topo.bisection_bandwidth_gbps() == pytest.approx(4 * 4 * 16)

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigError):
            Topology(num_gpus=1, num_switches=4, link=LinkSpec())


class TestAreaModel:
    def test_switch_merge_unit_matches_paper_magnitude(self):
        est = switch_merge_unit_area(SwitchSpec())
        # Paper Section V-D: ~0.50 mm^2, < 1% of an NVSwitch die.
        assert 0.2 < est.total_mm2 < 1.0
        assert est.fraction_of_die < 0.01
        assert est.sram_mm2 > 0 and est.cam_mm2 > 0

    def test_gpu_synchronizer_matches_paper_magnitude(self):
        est = gpu_synchronizer_area()
        # Paper: ~0.019 mm^2 per die, < 0.01% of an H100.
        assert 0.005 < est.total_mm2 < 0.05
        assert est.fraction_of_die < 0.0001

    def test_area_scales_with_table_size(self):
        small = switch_merge_unit_area(SwitchSpec(merge_table_entries=64))
        big = switch_merge_unit_area(SwitchSpec(merge_table_entries=640))
        assert big.total_mm2 > small.total_mm2 * 5

    def test_report_mentions_both_sides(self):
        report = overhead_report()
        assert "switch merge unit" in report
        assert "gpu synchronizer" in report
