"""Unit tests for TB-group synchronization and request throttling."""

import pytest

from repro.cais.coordination import (
    CreditThrottle, GroupSyncTable, SyncPhase, plane_for_group)
from repro.common.config import dgx_h100_config
from repro.common.errors import ProtocolError
from repro.common.events import Simulator
from repro.interconnect.message import Message, Op, gpu_node
from repro.interconnect.network import Network


class Fabric:
    def __init__(self, num_gpus=4, release_timeout_ns=None):
        self.sim = Simulator()
        cfg = dgx_h100_config(num_gpus=num_gpus)
        cfg = cfg.__class__(**{**cfg.__dict__, "num_gpus": num_gpus,
                               "num_switches": 1})
        self.net = Network(self.sim, cfg)
        self.table = GroupSyncTable(release_timeout_ns=release_timeout_ns)
        self.net.switches[0].attach_engine(self.table)
        self.releases = {g: [] for g in range(num_gpus)}
        for g in range(num_gpus):
            self.net.register_gpu(
                g, lambda m, g=g: self.releases[g].append((self.sim.now, m)))

    def sync(self, gpu, group_id, phase=SyncPhase.LAUNCH, expected=4,
             delay=0.0):
        msg = Message(Op.SYNC_REQ, gpu_node(gpu), ("sw", 0),
                      group_id=group_id,
                      meta={"phase": phase.value, "expected": expected})
        self.sim.schedule(delay, self.net.send_from_gpu, gpu, msg)


class TestGroupSyncTable:
    def test_release_broadcast_when_all_arrive(self):
        f = Fabric()
        for g in range(4):
            f.sync(g, group_id=7, delay=float(g) * 100)
        f.sim.run()
        for g in range(4):
            assert len(f.releases[g]) == 1
            assert f.releases[g][0][1].op is Op.SYNC_RELEASE
        assert f.table.releases_broadcast == 1
        assert f.table.pending_groups() == 0

    def test_no_release_until_last_gpu(self):
        f = Fabric()
        for g in range(3):
            f.sync(g, group_id=1)
        f.sim.run()
        assert all(not r for r in f.releases.values())
        assert f.table.pending_groups() == 1

    def test_release_times_are_aligned(self):
        f = Fabric()
        for g in range(4):
            f.sync(g, group_id=2, delay=float(g) * 1000)
        f.sim.run()
        times = [f.releases[g][0][0] for g in range(4)]
        assert max(times) - min(times) < 1.0   # same broadcast instant

    def test_duplicate_request_from_same_gpu_counted_once(self):
        f = Fabric()
        f.sync(0, group_id=3)
        f.sync(0, group_id=3, delay=10.0)
        f.sync(1, group_id=3, delay=20.0)
        f.sim.run()
        assert f.table.pending_groups() == 1    # still waiting on 2 GPUs

    def test_phases_tracked_independently(self):
        f = Fabric()
        for g in range(4):
            f.sync(g, group_id=5, phase=SyncPhase.LAUNCH)
        for g in range(2):
            f.sync(g, group_id=5, phase=SyncPhase.ACCESS, delay=1.0)
        f.sim.run()
        # LAUNCH released, ACCESS still pending.
        assert f.table.releases_broadcast == 1
        assert f.table.pending_groups() == 1

    def test_expected_mismatch_raises(self):
        f = Fabric()
        f.sync(0, group_id=9, expected=4)
        f.sync(1, group_id=9, expected=3, delay=1.0)
        with pytest.raises(ProtocolError):
            f.sim.run()

    def test_missing_group_id_raises(self):
        f = Fabric()
        msg = Message(Op.SYNC_REQ, gpu_node(0), ("sw", 0),
                      meta={"phase": "launch", "expected": 4})
        f.net.send_from_gpu(0, msg)
        with pytest.raises(ProtocolError):
            f.sim.run()

    def test_sync_cost_is_one_round_trip(self):
        f = Fabric()
        for g in range(4):
            f.sync(g, group_id=11)
        f.sim.run()
        cfg = f.net.config
        # Empty packets: 2 * (latency + flit serialization) + hop latency.
        flit_ser = 16 / cfg.link.bandwidth_gbps
        expected = 2 * (cfg.link.latency_ns + flit_ser) + \
            cfg.switch.hop_latency_ns
        assert f.releases[0][0][0] == pytest.approx(expected, rel=0.01)


    def test_timeout_releases_stragglers(self):
        f = Fabric(release_timeout_ns=5_000.0)
        f.sync(0, group_id=21)
        f.sync(1, group_id=21, delay=10.0)
        f.sim.run()
        # Only the two registered GPUs get the (forced) release.
        assert len(f.releases[0]) == 1 and len(f.releases[1]) == 1
        assert not f.releases[2] and not f.releases[3]
        assert f.table.timeout_releases == 1
        assert f.table.pending_groups() == 0

class TestPlaneForGroup:
    def test_deterministic_and_in_range(self):
        for gid in range(100):
            p = plane_for_group(gid, 4)
            assert 0 <= p < 4
            assert p == plane_for_group(gid, 4)

    def test_invalid_planes(self):
        with pytest.raises(ValueError):
            plane_for_group(1, 0)


class TestCreditThrottle:
    def test_grants_up_to_window(self):
        t = CreditThrottle(window=2)
        granted = []
        t.acquire(lambda: granted.append(1))
        t.acquire(lambda: granted.append(2))
        t.acquire(lambda: granted.append(3))
        assert granted == [1, 2]
        assert t.stalls == 1

    def test_release_wakes_waiter(self):
        t = CreditThrottle(window=1)
        granted = []
        t.acquire(lambda: granted.append("a"))
        t.acquire(lambda: granted.append("b"))
        t.release()
        assert granted == ["a", "b"]
        assert t.in_flight == 1

    def test_release_without_acquire_raises(self):
        t = CreditThrottle(window=1)
        with pytest.raises(ProtocolError):
            t.release()

    def test_fifo_wake_order(self):
        t = CreditThrottle(window=1)
        granted = []
        t.acquire(lambda: granted.append(0))
        for i in (1, 2, 3):
            t.acquire(lambda i=i: granted.append(i))
        t.release()
        t.release()
        assert granted == [0, 1, 2]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            CreditThrottle(window=0)
