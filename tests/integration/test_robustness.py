"""Robustness / failure-injection tests.

CAIS's coordination and the merge unit must stay live and correct under
conditions the steady-state experiments never hit: extreme scheduler skew,
straggler GPUs, a single switch plane, minimal GPU counts, and starved
merge tables.
"""

from dataclasses import replace

import pytest

from repro.common.config import FaultSpec, JitterSpec, dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.systems import make_system

TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)


def run_cais(config, scale=0.125, which="L1", system="CAIS"):
    model = LLAMA_7B.scaled(scale)
    graph = sublayer_graph(model, config.num_gpus, which)
    return make_system(system, config, tiling=TILING).run([graph])


def test_extreme_scheduler_skew_still_completes():
    """50 us launch skew (25x default) forces the sync-table timeouts to
    carry forward progress; the run must still complete correctly."""
    cfg = dgx_h100_config()
    cfg = replace(cfg, jitter=JitterSpec(tb_jitter=0.3,
                                         gpu_skew_ns=50_000.0,
                                         dispatch_shuffle_window=128))
    res = run_cais(cfg)
    assert res.tbs_completed > 0
    assert res.merge_stats.sessions_completed > 0


def test_extreme_skew_costs_but_does_not_break():
    cfg = dgx_h100_config()
    skewed = replace(cfg, jitter=JitterSpec(tb_jitter=0.3,
                                            gpu_skew_ns=50_000.0,
                                            dispatch_shuffle_window=128))
    base = run_cais(cfg).makespan_ns
    slow = run_cais(skewed).makespan_ns
    assert slow > base * 0.9          # may hide some skew, never free
    assert slow < base * 3.0          # bounded degradation, no livelock


def test_single_switch_plane():
    """All traffic through one plane: quarter the fabric bandwidth."""
    cfg = dgx_h100_config()
    cfg = replace(cfg, num_switches=1)
    res = run_cais(cfg)
    assert res.tbs_completed > 0
    four = run_cais(dgx_h100_config()).makespan_ns
    assert res.makespan_ns > four     # less bandwidth must cost time


def test_two_gpu_minimum():
    cfg = dgx_h100_config(num_gpus=2)
    res = run_cais(cfg)
    assert res.tbs_completed > 0
    assert res.merge_stats.sessions_completed > 0


def test_starved_merge_table_is_slow_but_live():
    """A 2-entry table cannot hold a single reduction sub-chunk session:
    everything bypasses or evicts, and the run must still finish."""
    cfg = dgx_h100_config().with_merge_entries(2)
    res = run_cais(cfg)
    assert res.tbs_completed > 0
    summary = res.merge_stats.summary()
    assert summary["bypasses"] + summary["lru_evictions"] + \
        summary["timeout_evictions"] > 0


def test_all_sublayers_under_all_cais_variants():
    cfg = dgx_h100_config()
    for which in ("L2", "L3", "L4"):
        for system in ("CAIS", "CAIS-Base", "CAIS-w/o-Coord"):
            res = run_cais(cfg, which=which, system=system)
            assert res.tbs_completed > 0, (which, system)


def test_zero_jitter_configuration():
    cfg = dgx_h100_config()
    cfg = replace(cfg, jitter=JitterSpec(tb_jitter=0.0, gpu_skew_ns=0.0,
                                         dispatch_shuffle_window=1))
    res = run_cais(cfg)
    assert res.tbs_completed > 0


# ----------------------------------------------------------------------
# Fault injection (repro.faults): the run must survive an actively
# hostile fabric — dropped/corrupted messages, degraded and downed
# links, straggling GPUs — and still produce the same completed work.
# ----------------------------------------------------------------------
def test_faulted_cais_run_completes_correctly():
    base_cfg = dgx_h100_config()
    faulted = base_cfg.with_faults(
        FaultSpec(enabled=True, intensity=0.5, fault_seed=0))
    base = run_cais(base_cfg)
    res = run_cais(faulted)
    # Completion and correctness: every thread block the fault-free run
    # retires must also retire under faults (recovery, not loss).
    assert res.tbs_completed == base.tbs_completed
    assert res.merge_stats.sessions_completed > 0
    # The resilience machinery actually exercised: messages were lost and
    # retransmitted, corrupted copies were discarded unacked.
    assert res.details["faults.messages_dropped"] > 0
    assert res.details["faults.retries"] > 0
    assert res.details["faults.corrupt_discards"] > 0
    # Faults cost time, but recovery is bounded — no timeout cascades.
    assert res.makespan_ns > base.makespan_ns
    assert res.makespan_ns < base.makespan_ns * 4.0


def test_faulted_run_is_reproducible():
    cfg = dgx_h100_config().with_faults(
        FaultSpec(enabled=True, intensity=0.5, fault_seed=7))
    a = run_cais(cfg)
    b = run_cais(cfg)
    assert a.makespan_ns == b.makespan_ns
    assert dict(a.details) == dict(b.details)


def test_nvls_unit_failure_falls_back_to_ring():
    """Killing every in-switch compute unit early must degrade TP-NVLS to
    ring collectives — slower, but complete and accounted for."""
    spec = FaultSpec(enabled=True, intensity=1.0, fault_seed=0,
                     nvls_fail_rate=1.0, link_degrade_rate=0.0,
                     link_down_rate=0.0, plane_fail_rate=0.0,
                     gpu_straggler_rate=0.0, sm_throttle_rate=0.0,
                     msg_drop_rate=0.0, msg_corrupt_rate=0.0,
                     fault_window_ns=20_000.0, horizon_ns=50_000.0)
    base_cfg = dgx_h100_config()
    base = run_cais(base_cfg, system="TP-NVLS")
    res = run_cais(base_cfg.with_faults(spec), system="TP-NVLS")
    assert res.tbs_completed == base.tbs_completed
    assert res.details["faults.nvls_unit_failures"] == base_cfg.num_switches
    assert res.details["faults.nvls_fallbacks"] > 0
    assert res.makespan_ns > base.makespan_ns   # ring is the slow path
