"""Integration tests: per-request trace tracks, live run reports, diff.

One tiny 4-GPU serving run with every reporting sink installed drives
the full pipeline: request-log phases -> per-request Perfetto tracks ->
report dict -> canonical JSON -> self-diff.  Pinned here:

* one ``serving/reqNNNN`` track per request, whose phase spans tile the
  request span exactly (durations sum to ``e2e_ns``);
* same-seed runs produce byte-identical traces and report JSON;
* installing the sinks does not perturb the simulation itself;
* a live report validates against the schema and self-diffs to the
  grep-able "no movement" line.
"""

import json
import math

import pytest

from repro import obs
from repro.common import fastpath
from repro.common.config import dgx_h100_config
from repro.experiments.diff import diff_reports, format_diff
from repro.experiments.report import (build_report, report_to_json,
                                      validate_report)
from repro.llm.models import ModelConfig
from repro.llm.serving import ServingSpec, simulate_serving
from repro.llm.tiling import TilingConfig
from repro.obs.tracer import Tracer
from repro.systems import make_system

TINY = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                   seq_len=64, batch=4, layers=4)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Never leak installed sinks into other tests."""
    obs.reset()
    yield
    obs.reset()


def tiny_spec() -> ServingSpec:
    return ServingSpec(model="tiny", seed=7, arrival_rate_rps=100_000.0,
                       horizon_ms=0.05, prompt_min=8, prompt_max=24,
                       output_min=1, output_max=3, max_batch_requests=4)


def _serve():
    config = dgx_h100_config(num_gpus=4, seed=1)
    tiling = TilingConfig(tile=32, chunk_bytes=32768, red_chunk_bytes=8192)
    system = make_system("TP-NVLS", config, tiling=tiling, jitter=False)
    return simulate_serving(system, tiny_spec(), model=TINY, style="basic")


def _instrumented_serve(window_ns=5_000.0):
    """Fresh sinks, one serving run; returns (serving, tracer)."""
    obs.reset()
    tracer = Tracer()
    obs.install(tracer=tracer,
                timeseries=obs.TimeSeriesSink(window_ns=window_ns),
                request_log=obs.RequestLog(),
                causality=obs.CausalityRecorder())
    return _serve(), tracer


# ---------------------------------------------------------------------------
# Per-request Perfetto tracks (satellite 3)
# ---------------------------------------------------------------------------

def test_one_track_per_request_with_phase_spans_summing_to_e2e():
    serving, tracer = _instrumented_serve()
    tracks = tracer.tracks()
    track_of = {name: idx for idx, name in enumerate(tracks)}
    assert len(serving.stats) > 0
    for s in serving.stats:
        key = ("serving", f"req{s.rid:04d}")
        assert key in track_of, f"missing track for request {s.rid}"
        evs = [e for e in tracer.events() if e["track"] == track_of[key]]
        outer = [e for e in evs
                 if e["ph"] == "X" and e["name"] == "request"]
        assert len(outer) == 1
        assert outer[0]["ts"] == pytest.approx(s.arrival_ns / 1e3)
        assert outer[0]["dur"] == pytest.approx(s.e2e_ns / 1e3)
        phases = [e for e in evs if e.get("cat") == "serving-phase"]
        assert phases, f"request {s.rid} has no phase spans"
        # Phases tile arrival -> finish, so their durations sum to e2e.
        assert sum(p["dur"] for p in phases) \
            == pytest.approx(s.e2e_ns / 1e3, rel=1e-9)
        assert sum(p["args"]["tokens"] for p in phases) >= s.output_len
        instants = [e for e in evs if e["ph"] == "i"
                    and e["name"] == "first_token"]
        assert len(instants) == 1
        assert instants[0]["ts"] \
            == pytest.approx((s.arrival_ns + s.ttft_ns) / 1e3)
    # No track is shared between two requests: the per-request track
    # count equals the request count.
    req_tracks = [t for t in tracks if t[0] == "serving"]
    assert len(req_tracks) == len(serving.stats)


def test_request_records_tile_and_match_stats():
    serving, _ = _instrumented_serve()
    records = serving.run.request_log.records()
    assert [r.rid for r in records] == [s.rid for s in serving.stats]
    for rec, s in zip(records, serving.stats):
        assert rec.finish_ns == s.finish_ns
        assert sum(p.duration_ns for p in rec.phases) \
            == pytest.approx(rec.e2e_ns, rel=1e-12, abs=1e-6)
        # Category attribution partitions each iteration phase exactly.
        total_cat = sum(rec.category_total_ns(g)
                        for g in ("compute", "comm", "queue", "fault"))
        assert total_cat == pytest.approx(rec.e2e_ns, rel=1e-9, abs=1e-3)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

def test_same_seed_runs_are_byte_identical():
    serving_a, tracer_a = _instrumented_serve()
    report_a = build_report(serving_a)
    serving_b, tracer_b = _instrumented_serve()
    report_b = build_report(serving_b)
    trace_a = json.dumps({"tracks": tracer_a.tracks(),
                          "events": tracer_a.events()}, sort_keys=True)
    trace_b = json.dumps({"tracks": tracer_b.tracks(),
                          "events": tracer_b.events()}, sort_keys=True)
    assert trace_a == trace_b
    assert report_to_json(report_a) == report_to_json(report_b)


def test_sinks_do_not_perturb_the_simulation():
    # Sinks force the engine fast-path off (they observe per-event state),
    # so the uninstrumented reference disables it too: event counts are an
    # engine detail, physics is the contract.
    obs.reset()
    with fastpath.overridden(fastpath.DISABLED):
        baseline = _serve()
    instrumented, _ = _instrumented_serve()
    assert instrumented.run.makespan_ns == baseline.run.makespan_ns
    assert instrumented.run.events == baseline.run.events
    assert [s.finish_ns for s in instrumented.stats] \
        == [s.finish_ns for s in baseline.stats]
    assert [s.ttft_ns for s in instrumented.stats] \
        == [s.ttft_ns for s in baseline.stats]


# ---------------------------------------------------------------------------
# Report on a live run
# ---------------------------------------------------------------------------

def test_live_report_validates_and_self_diffs_clean():
    serving, _ = _instrumented_serve()
    report = build_report(serving)
    validate_report(report)
    summary = report["summary"]
    assert summary["requests"] == len(serving.stats)
    assert summary["tokens"] == serving.total_output_tokens
    # Window series covers the makespan and conserves token counts.
    assert report["windows"], "dense window series expected"
    assert sum(w["tokens"] for w in report["windows"]) \
        == pytest.approx(serving.total_output_tokens)
    assert sum(w["completions"] for w in report["windows"]) \
        == len(serving.stats)
    # Phase totals partition the summed E2E time.
    totals = report["phases"]["totals_ns"]
    e2e_sum = sum(s.e2e_ns for s in serving.stats)
    assert sum(totals.values()) == pytest.approx(e2e_sum, rel=1e-9)
    # Fault-free run: nothing charged to the fault group, no marks.
    assert report["phases"]["categories_ns"]["fault"] == 0.0
    assert report["fault_windows"] == []
    assert all(not math.isnan(v)
               for v in report["summary"]["ttft_ns"].values())
    diff = diff_reports(report, json.loads(report_to_json(report)))
    assert diff["moved"] is False
    assert "no movement" in format_diff(diff)
