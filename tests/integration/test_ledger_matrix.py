"""Integration tests: the run ledger and harness telemetry through a
real ``run_matrix`` sweep.

The unit layer (tests/unit/test_ledger.py) pins record schema and store
semantics; here we pin the system-level contracts from ISSUE 9's
acceptance criteria:

* a matrix run with ``$REPRO_LEDGER`` set appends one schema-valid
  record per task outcome;
* a warm-cache re-run appends **hit** records without re-simulating
  anything, and those records are stable-identical to the miss records
  that seeded the cache;
* ``repro ledger query/summarize/regress`` work end-to-end on the
  resulting ledger;
* the harness meta-trace validates as Perfetto JSON with one span per
  executed (not cache-served) task.
"""

import json

import pytest

from repro.common.config import dgx_h100_config
from repro.experiments import parallel
from repro.experiments.cache import SimCache
from repro.experiments.ledger import main as ledger_main
from repro.experiments.parallel import ExecContext, SimTask, run_matrix
from repro.experiments.runner import Scale
from repro.llm.graph import CommKind, GemmShape, Graph, LogicalOp, OpKind
from repro.llm.tiling import TilingConfig
from repro.obs.ledger import LEDGER_ENV, RunLedger, stable_line, \
    validate_record
from repro.obs.perfetto import validate_trace_file

SCALE = Scale(tokens_fraction=1.0,
              tiling=TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192))


def tiny_task(system="TP-NVLS", seed=2026) -> SimTask:
    g = Graph("tiny")
    g.add(LogicalOp(name="gemm0", kind=OpKind.GEMM,
                    gemm=GemmShape(256, 256, 256)))
    g.add(LogicalOp(name="ar0", kind=OpKind.COMM, deps=("gemm0",),
                    comm=CommKind.ALL_REDUCE, comm_bytes=1 << 16))
    return SimTask(system=system, graphs=(g,),
                   config=dgx_h100_config(seed=seed), scale=SCALE)


@pytest.fixture
def ledger_env(tmp_path, monkeypatch):
    """A fresh ledger root exported via $REPRO_LEDGER."""
    root = tmp_path / "ledger"
    monkeypatch.setenv(LEDGER_ENV, str(root))
    return str(root)


def test_matrix_appends_one_valid_record_per_task(ledger_env, tmp_path):
    tasks = [tiny_task(seed=1), tiny_task(seed=2), tiny_task(seed=1)]
    cache = SimCache(str(tmp_path / "cache"))
    out = run_matrix(tasks, ExecContext(jobs=1, cache=cache))
    recs = RunLedger(ledger_env).records()
    assert len(recs) == 3            # 2 misses + 1 in-matrix alias hit
    for rec in recs:
        validate_record(rec)
    assert sum(r["volatile"]["cache_hit"] for r in recs) == 1
    by_fp = {}
    for rec in recs:
        by_fp.setdefault(rec["fingerprint"], []).append(rec)
    assert set(by_fp) == {t.fingerprint() for t in tasks}
    # Record metrics mirror the returned summaries.
    for task, summary in zip(tasks, out):
        rec = by_fp[task.fingerprint()][0]
        assert rec["metrics"]["makespan_ns"] == summary.makespan_ns
        assert rec["metrics"]["events"] == summary.events
        assert rec["spec"]["seed"] == task.config.seed


def test_warm_rerun_appends_hits_without_resimulating(
        ledger_env, tmp_path, monkeypatch):
    tasks = [tiny_task(seed=1), tiny_task(seed=2)]
    cache = SimCache(str(tmp_path / "cache"))
    cold = run_matrix(tasks, ExecContext(jobs=1, cache=cache))

    def _boom(task):
        raise AssertionError("warm re-run must not simulate")
    monkeypatch.setattr(parallel, "_execute_task_observed", _boom)
    warm = run_matrix(tasks, ExecContext(jobs=1, cache=cache))
    assert [s.makespan_ns for s in warm] == [s.makespan_ns for s in cold]

    recs = RunLedger(ledger_env).records()
    assert [r["volatile"]["cache_hit"] for r in recs] == \
        [False, False, True, True]
    assert all(r["volatile"]["wall_ms"] == 0.0 for r in recs[2:])
    # Hit records are byte-identical to their seeding miss records
    # outside the volatile section — the determinism contract.
    by_fp = {}
    for rec in recs:
        by_fp.setdefault(rec["fingerprint"], set()).add(stable_line(rec))
    assert all(len(lines) == 1 for lines in by_fp.values())


def test_ledger_cli_end_to_end(ledger_env, tmp_path, capsys):
    run_matrix([tiny_task(seed=1), tiny_task(seed=2)],
               ExecContext(jobs=1, cache=SimCache(str(tmp_path / "c"))))
    run_matrix([tiny_task(seed=1), tiny_task(seed=2)],
               ExecContext(jobs=1, cache=SimCache(str(tmp_path / "c"))))

    assert ledger_main(["--dir", ledger_env, "query"]) == 0
    out = capsys.readouterr().out
    assert "4 record(s)" in out and "TP-NVLS" in out

    assert ledger_main(["--dir", ledger_env, "query", "--seed", "1",
                        "--json"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert all(json.loads(l)["spec"]["seed"] == 1 for l in lines)

    assert ledger_main(["--dir", ledger_env, "summarize"]) == 0
    out = capsys.readouterr().out
    assert "hit rate" in out and "50%" in out

    # Regress passes on a clean history (benchmark envelopes resolved
    # from the repo root by the CI job; here they may be absent, which
    # regress reports as skipped, not failed).
    assert ledger_main(["--dir", ledger_env, "regress",
                        "--engine-bench", "BENCH_engine.json",
                        "--bench", "benchmarks/BENCH_baseline.json"]) == 0
    assert "OK" in capsys.readouterr().out


def test_ledger_regress_fails_on_planted_drift(ledger_env, tmp_path,
                                               capsys):
    run_matrix([tiny_task(seed=1)], ExecContext(jobs=1))
    led = RunLedger(ledger_env)
    drifted = led.records()[0]
    drifted["metrics"] = dict(drifted["metrics"],
                              makespan_ns=drifted["metrics"]["makespan_ns"]
                              + 1.0)
    led.append(drifted)
    assert ledger_main(["--dir", ledger_env, "regress"]) == 1
    assert "drift" in capsys.readouterr().out


def test_meta_trace_has_one_span_per_executed_task(tmp_path):
    trace_path = tmp_path / "meta.json"
    tasks = [tiny_task(seed=1), tiny_task(seed=2), tiny_task(seed=1)]
    run_matrix(tasks, ExecContext(jobs=1, cache=SimCache(None),
                                  meta_trace=str(trace_path)))
    assert validate_trace_file(str(trace_path)) == []
    payload = json.loads(trace_path.read_text())
    spans = [e for e in payload["traceEvents"]
             if e.get("ph") == "X" and e.get("cat") == "sim-task"]
    hits = [e for e in payload["traceEvents"]
            if e.get("ph") == "i" and e.get("cat") == "cache"]
    assert len(spans) == 2           # seeds 1 and 2 simulate once each
    assert len(hits) == 1            # the duplicate aliases
    assert {e["args"]["fingerprint"] for e in spans} == \
        {tiny_task(seed=1).fingerprint()[:12],
         tiny_task(seed=2).fingerprint()[:12]}


def test_ledger_disabled_leaves_no_files(tmp_path, monkeypatch):
    monkeypatch.delenv(LEDGER_ENV, raising=False)
    run_matrix([tiny_task(seed=1)], ExecContext(jobs=1))
    assert list(tmp_path.iterdir()) == []
