"""Figure-level determinism of the parallel runner and the result cache.

The acceptance bar for the fan-out work: ``--jobs N`` must produce tables
byte-identical to ``--jobs 1``, and a cached re-run must reproduce them
while skipping every simulation.  Exercised on a small fig12 slice (one
model, two sub-layers, three systems) so the suite stays fast.
"""

import dataclasses

from repro import obs
from repro.experiments import fig12_sublayer
from repro.experiments.cache import SimCache
from repro.experiments.parallel import ExecContext
from repro.experiments.runner import QUICK

SLICE = dict(models=["LLaMA-7B"], sublayers=("L1", "L2"),
             systems=("TP-NVLS", "CAIS-Base", "CAIS"))


def _table(ctx):
    return fig12_sublayer.format_table(
        fig12_sublayer.run(QUICK, ctx=ctx, **SLICE))


def test_parallel_jobs_match_serial_table():
    serial = _table(ExecContext(jobs=1))
    fanned = _table(ExecContext(jobs=4))
    assert fanned == serial


def test_cached_rerun_reproduces_table_without_simulating(tmp_path):
    first = _table(ExecContext(jobs=1, cache=SimCache(root=str(tmp_path))))
    obs.install(metrics=obs.MetricsRegistry())
    try:
        metrics = obs.current_metrics()
        # Fresh SimCache instance: everything must come off disk.
        second = _table(ExecContext(jobs=1,
                                    cache=SimCache(root=str(tmp_path))))
        assert second == first
        assert metrics.counter("cache.hits").value == 6   # 1 model x 2 x 3
        assert metrics.counter("cache.misses").value == 0
        assert metrics.histogram("experiments.task_wall_ms").count == 0
    finally:
        obs.reset()


def test_cache_keeps_runs_separate_across_scales(tmp_path):
    cache = SimCache(root=str(tmp_path))
    ctx = ExecContext(jobs=1, cache=cache)
    _table(ctx)
    obs.install(metrics=obs.MetricsRegistry())
    try:
        metrics = obs.current_metrics()
        fig12_sublayer.run(dataclasses.replace(QUICK, tokens_fraction=0.25), ctx=ctx, **SLICE)
        assert metrics.counter("cache.hits").value == 0
    finally:
        obs.reset()
