"""End-to-end observability: full CAIS runs with tracing/metrics enabled.

Covers the acceptance bar for the obs subsystem: a traced run emits a
valid Chrome/Perfetto trace covering every instrumented component family,
and two same-seed runs produce byte-identical trace and metrics files
(everything is stamped with simulation time, never wall-clock).
"""

import json

import pytest

from repro import obs
from repro.common import fastpath
from repro.common.config import dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.obs.perfetto import (to_chrome_trace, validate_chrome_trace,
                                write_chrome_trace)
from repro.systems import make_system

TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _traced_run(trace_path):
    """One CAIS L1 run with all sinks installed; returns (result, tracer,
    metrics json string)."""
    tracer = obs.Tracer()
    metrics = obs.MetricsRegistry()
    obs.install(tracer=tracer, metrics=metrics)
    try:
        model = LLAMA_7B.scaled(0.125)
        system = make_system("CAIS", dgx_h100_config(), tiling=TILING)
        result = system.run([sublayer_graph(model, 8, "L1")])
        write_chrome_trace(tracer, str(trace_path))
        return result, tracer, metrics.to_json()
    finally:
        obs.reset()


def test_traced_run_covers_all_component_families(tmp_path):
    path = tmp_path / "trace.json"
    result, tracer, metrics_json = _traced_run(path)
    assert result.makespan_ns > 0

    # The emitted file is schema-valid (what Perfetto will load).
    loaded = json.loads(path.read_text())
    assert validate_chrome_trace(loaded) == []

    # Spans/instants from >= 4 instrumented component types.
    cats = {e.get("cat") for e in tracer.events()}
    assert {"tb", "tb-phase", "link", "switch", "merge",
            "kernel"} <= cats

    # Every hardware family got its own process row.
    processes = {p for p, _ in tracer.tracks()}
    assert any(p.startswith("GPU ") for p in processes)
    assert any(p.startswith("Switch ") for p in processes)
    assert "Fabric" in processes
    assert "Executor" in processes

    # The metrics snapshot saw real traffic.
    snap = json.loads(metrics_json)
    assert snap["counters"]["gpu.tbs_completed"] == result.tbs_completed
    assert snap["counters"]["link.messages"] > 0
    assert snap["counters"]["cais.merge.hits"] > 0
    assert snap["histograms"]["gpu.tb_issue_to_retire_ns"]["count"] > 0
    assert snap["gauges"]["sim.events_processed"]["value"] == result.events

    # The run result carries the registry into JSON exports.
    assert result.metrics is not None
    assert result.metrics.snapshot() == snap


def test_same_seed_runs_are_byte_identical(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    _, _, metrics_a = _traced_run(a)
    _, _, metrics_b = _traced_run(b)
    assert a.read_bytes() == b.read_bytes()
    assert metrics_a == metrics_b


def test_untraced_run_allocates_no_observability_state(tmp_path):
    """A run with the null sinks must not record anything anywhere —
    the same workload as the traced test, observability off."""
    model = LLAMA_7B.scaled(0.125)
    system = make_system("CAIS", dgx_h100_config(), tiling=TILING)
    result = system.run([sublayer_graph(model, 8, "L1")])
    assert result.metrics is None
    assert obs.current_tracer().enabled is False
    tr = to_chrome_trace(obs.Tracer())       # empty tracer exports cleanly
    assert tr["traceEvents"] == []


def test_traced_and_untraced_runs_agree_on_physics(tmp_path):
    """Observability is read-only: enabling it must not perturb the
    simulated hardware in any way.

    Tracing forces the engine fast-path off (span emission needs every
    event), so the untraced reference runs with the fast-path disabled
    too — event counts are an engine detail, physics is the contract."""
    traced, _, _ = _traced_run(tmp_path / "t.json")
    model = LLAMA_7B.scaled(0.125)
    with fastpath.overridden(fastpath.DISABLED):
        plain = make_system("CAIS", dgx_h100_config(), tiling=TILING).run(
            [sublayer_graph(model, 8, "L1")])
    assert plain.makespan_ns == traced.makespan_ns
    assert plain.tbs_completed == traced.tbs_completed
    assert plain.events == traced.events


def test_fastpath_run_agrees_with_traced_physics(tmp_path):
    """The engine fast-path elides events but must not move physics: a
    default (fast-path on) run reproduces the traced makespan exactly."""
    traced, _, _ = _traced_run(tmp_path / "t.json")
    model = LLAMA_7B.scaled(0.125)
    fast = make_system("CAIS", dgx_h100_config(), tiling=TILING).run(
        [sublayer_graph(model, 8, "L1")])
    assert fast.makespan_ns == traced.makespan_ns
    assert fast.tbs_completed == traced.tbs_completed
    assert fast.events <= traced.events
