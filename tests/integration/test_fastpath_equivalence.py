"""Fast-path equivalence: every layer reproduces the reference run.

DESIGN.md §11 states the equivalence contract per layer:

* ``calendar_queue``   — byte-identical (provably; property-tested in
  ``tests/properties/test_scheduler_equivalence.py``);
* ``link_windows``     — identical physics (per-chunk timestamps exact),
  only event counts and same-instant interleaving differ;
* ``analytic_collectives`` — exact-float makespans (the bypass replays a
  calibrated signature only after it validated to exact equality);
* ``analytic_kernels`` — bit-exact replication of the event path,
  including every RNG draw and busy-integral float.

These tests run real system workloads (scaled) with each layer toggled
and require the observable outputs to match the all-off reference to
exact float equality — makespan, total compute, TB counts, and GPU
utilization.  The kernel layer's conflict counter is pinned to zero on
graphs with parallel branches (training backward), guarding the
isolated-launch soloness analysis in ``BarrierRunner.run_graph``.
"""

import dataclasses

import pytest

from repro.common import fastpath
from repro.common.config import dgx_h100_config
from repro.experiments.runner import layer_graphs
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph
from repro.systems import make_system

SCALE = 0.125
TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)
SYSTEMS = ("TP-NVLS", "CAIS", "CoCoNet", "T3")

#: One config per layer with only that layer enabled, plus all-on.
LAYER_CONFIGS = {
    "calendar_queue": fastpath.FastPathConfig(
        calendar_queue=True, link_windows=False,
        analytic_collectives=False, analytic_kernels=False),
    "link_windows": fastpath.FastPathConfig(
        calendar_queue=False, link_windows=True,
        analytic_collectives=False, analytic_kernels=False),
    "analytic_collectives": fastpath.FastPathConfig(
        calendar_queue=False, link_windows=False,
        analytic_collectives=True, analytic_kernels=False),
    "analytic_kernels": fastpath.FastPathConfig(
        calendar_queue=False, link_windows=False,
        analytic_collectives=False, analytic_kernels=True),
    "all": fastpath.FastPathConfig(),
}


def _observables(res):
    return (res.makespan_ns, res.compute_ns, res.tbs_completed,
            res.gpu_utilization)


def _run(system, graphs, cfg=None):
    cfg = cfg or dgx_h100_config()
    return make_system(system, cfg, tiling=TILING).run(list(graphs))


@pytest.fixture(scope="module")
def layer_workload():
    model = LLAMA_7B.scaled(SCALE)
    cfg = dgx_h100_config()
    return model, cfg


@pytest.fixture(scope="module")
def references(layer_workload):
    """All-off reference observables per (system, training)."""
    model, cfg = layer_workload
    out = {}
    with fastpath.overridden(fastpath.DISABLED):
        for system in SYSTEMS:
            for training in (False, True):
                graphs = layer_graphs(model, cfg.num_gpus, system,
                                      training=training)
                out[system, training] = _observables(
                    _run(system, graphs, cfg))
    return out


@pytest.mark.parametrize("layer", sorted(LAYER_CONFIGS))
@pytest.mark.parametrize("training", (False, True),
                         ids=("inference", "training"))
@pytest.mark.parametrize("system", SYSTEMS)
def test_layer_preserves_observables(references, layer_workload,
                                     system, training, layer):
    model, cfg = layer_workload
    graphs = layer_graphs(model, cfg.num_gpus, system, training=training)
    with fastpath.overridden(LAYER_CONFIGS[layer]):
        res = _run(system, graphs, cfg)
    assert _observables(res) == references[system, training]
    # The kernel mini-sim must never have fired into a non-isolated
    # frame: a nonzero conflict count means the soloness analysis let a
    # concurrent launch through (training graphs run dgrad+wgrad branches
    # in one event frame — the exact case the counter guards).
    assert res.details.get("fastpath.kernel_conflicts", 0.0) == 0.0


def test_kernel_fastpath_engages_and_elides_events(layer_workload):
    """The analytic kernel layer must actually fire on barrier-style
    runs (TP-NVLS layer graphs are chains of isolated kernels) and
    report the events it skipped."""
    model, cfg = layer_workload
    graphs = layer_graphs(model, cfg.num_gpus, "TP-NVLS", training=False)
    with fastpath.overridden(fastpath.DISABLED):
        ref = _run("TP-NVLS", graphs, cfg)
    with fastpath.overridden(LAYER_CONFIGS["analytic_kernels"]):
        fast = _run("TP-NVLS", graphs, cfg)
    assert fast.details.get("fastpath.kernel_launches", 0.0) > 0
    assert fast.details.get("fastpath.events_elided", 0.0) > 0
    assert fast.events < ref.events
    assert fast.makespan_ns == ref.makespan_ns


def test_kernel_fastpath_exact_with_jitter(layer_workload):
    """Jitter draws are replicated in the exact event-path order, so the
    mini-sim stays bit-exact with jitter enabled and a nonzero seed."""
    model, _ = layer_workload
    cfg = dgx_h100_config(seed=7)
    jcfg = dataclasses.replace(
        cfg, jitter=dataclasses.replace(cfg.jitter, tb_jitter=0.02))
    graphs = layer_graphs(model, jcfg.num_gpus, "TP-NVLS", training=True)
    with fastpath.overridden(fastpath.DISABLED):
        ref = _run("TP-NVLS", graphs, jcfg)
    with fastpath.overridden(LAYER_CONFIGS["analytic_kernels"]):
        fast = _run("TP-NVLS", graphs, jcfg)
    assert fast.details.get("fastpath.kernel_launches", 0.0) > 0
    assert _observables(fast) == _observables(ref)


@pytest.mark.parametrize("layer", sorted(LAYER_CONFIGS))
def test_serving_run_preserves_observables(layer):
    """fig20-style continuous-batching serving: per-layer equivalence
    of the whole request stream (TTFTs, makespan, token totals)."""
    from repro.llm.models import ModelConfig
    from repro.llm.serving import ServingSpec, simulate_serving

    tiny = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                       seq_len=64, batch=4, layers=4)
    spec = ServingSpec(model="tiny", seed=7, arrival_rate_rps=100_000.0,
                       horizon_ms=0.05, prompt_min=8, prompt_max=24,
                       output_min=1, output_max=3, max_batch_requests=4)

    def serve():
        cfg = dgx_h100_config(num_gpus=4, seed=1)
        system = make_system("TP-NVLS", cfg, tiling=TILING)
        return simulate_serving(system, spec, model=tiny, style="basic")

    with fastpath.overridden(fastpath.DISABLED):
        ref = serve()
    with fastpath.overridden(LAYER_CONFIGS[layer]):
        fast = serve()
    assert fast.run.makespan_ns == ref.run.makespan_ns
    assert fast.total_output_tokens == ref.total_output_tokens
    assert fast.iterations == ref.iterations
    assert ([s.ttft_ns for s in fast.stats]
            == [s.ttft_ns for s in ref.stats])


@pytest.mark.parametrize("layer", sorted(LAYER_CONFIGS))
def test_faulted_run_preserves_observables(layer_workload, layer):
    """fig19-style faulted runs: fault windows make links/executors
    ineligible for the fast path, and whatever remains eligible must
    still reproduce the reference exactly (retries included)."""
    from repro.common.config import FaultSpec

    model, _ = layer_workload
    cfg = dgx_h100_config().with_faults(
        FaultSpec(enabled=True, intensity=1.0, fault_seed=3))
    graphs = layer_graphs(model, cfg.num_gpus, "TP-NVLS", training=False)
    with fastpath.overridden(fastpath.DISABLED):
        ref = _run("TP-NVLS", graphs, cfg)
    with fastpath.overridden(LAYER_CONFIGS[layer]):
        fast = _run("TP-NVLS", graphs, cfg)
    assert _observables(fast) == _observables(ref)
    assert fast.details.get("fastpath.kernel_conflicts", 0.0) == 0.0


@pytest.mark.parametrize("layer", sorted(LAYER_CONFIGS))
def test_faulted_serving_run_preserves_observables(layer):
    """fig21-style faulted serving: the whole resilience stack — drop
    storms with retransmission, retry-budget aborts, SLO-aware shedding
    — must be invisible to the fast path: every per-request stat and
    every non-fastpath detail is exact-float-equal with --no-fastpath."""
    from repro.common.config import FaultSpec
    from repro.llm.models import ModelConfig
    from repro.llm.serving import ServingSpec, simulate_serving

    tiny = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                       seq_len=64, batch=4, layers=4)
    spec = ServingSpec(model="tiny", seed=5, arrival_rate_rps=100_000.0,
                       horizon_ms=0.05, prompt_min=8, prompt_max=24,
                       output_min=1, output_max=3, max_batch_requests=4,
                       admission_policy="shed", slo_ttft_ms=0.001,
                       retry_budget=1)

    def serve():
        cfg = dgx_h100_config(num_gpus=4, seed=1).with_faults(FaultSpec(
            enabled=True, intensity=1.0, fault_seed=5, msg_drop_rate=0.3))
        system = make_system("CAIS", cfg, tiling=TILING)
        return simulate_serving(system, spec, model=tiny, style="sp")

    with fastpath.overridden(fastpath.DISABLED):
        ref = serve()
    with fastpath.overridden(LAYER_CONFIGS[layer]):
        fast = serve()
    assert fast.run.makespan_ns == ref.run.makespan_ns
    assert fast.stats == ref.stats
    assert [s.rid for s in fast.shed] == [s.rid for s in ref.shed]
    assert (fast.aborts, fast.reprefill_tokens, fast.iterations) == \
        (ref.aborts, ref.reprefill_tokens, ref.iterations)
    strip = lambda d: {k: v for k, v in d.items()
                       if not k.startswith("fastpath.")}
    assert strip(fast.run.details) == strip(ref.run.details)
    # The recipe must actually exercise the resilience stack (aborts are
    # covered by the serving-invariant property tests; with this tight an
    # SLO most of the stream sheds before it can run long enough to
    # exhaust a retry budget).
    assert ref.shed
    assert ref.run.details["faults.retries"] > 0


def test_faulted_serving_disabled_run_carries_no_fastpath_details():
    """--no-fastpath byte-identity extends to faulted serving: with every
    layer off the result details carry no ``fastpath.*`` keys."""
    from repro.common.config import FaultSpec
    from repro.llm.models import ModelConfig
    from repro.llm.serving import ServingSpec, simulate_serving

    tiny = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                       seq_len=64, batch=4, layers=4)
    spec = ServingSpec(model="tiny", seed=5, arrival_rate_rps=100_000.0,
                       horizon_ms=0.05, prompt_min=8, prompt_max=24,
                       output_min=1, output_max=3, max_batch_requests=4,
                       admission_policy="shed", slo_ttft_ms=0.001,
                       retry_budget=1)
    cfg = dgx_h100_config(num_gpus=4, seed=1).with_faults(FaultSpec(
        enabled=True, intensity=1.0, fault_seed=5, msg_drop_rate=0.3))
    with fastpath.overridden(fastpath.DISABLED):
        res = simulate_serving(make_system("CAIS", cfg, tiling=TILING),
                               spec, model=tiny, style="sp")
    assert not any(k.startswith("fastpath.") for k in res.run.details)


def test_disabled_runs_carry_no_fastpath_details(layer_workload):
    """Byte-identity of the baseline: with every layer off, the result
    details contain no ``fastpath.*`` keys at all (a run is
    indistinguishable from a build that predates the fast-path)."""
    model, cfg = layer_workload
    graph = sublayer_graph(model, cfg.num_gpus, "L1")
    with fastpath.overridden(fastpath.DISABLED):
        res = _run("CAIS", [graph], cfg)
    assert not any(k.startswith("fastpath.") for k in res.details)


def test_sim_task_fingerprint_tracks_fastpath_layers():
    """Cache entries must not be shared across layer sets — except that
    the all-off fingerprint matches the pre-fast-path payload (so
    ``--no-fastpath`` reuses historical cache entries)."""
    from repro.experiments.parallel import SimTask
    from repro.experiments.runner import DEFAULT

    cfg = dgx_h100_config()
    task = SimTask(system="TP-NVLS", graphs=(), config=cfg, scale=DEFAULT)
    with fastpath.overridden(fastpath.DISABLED):
        off = task.fingerprint()
        assert "fastpath" not in task.payload()
    with fastpath.overridden(fastpath.FastPathConfig()):
        on = task.fingerprint()
    with fastpath.overridden(LAYER_CONFIGS["link_windows"]):
        windows_only = task.fingerprint()
    with fastpath.overridden(LAYER_CONFIGS["calendar_queue"]):
        calendar_only = task.fingerprint()
    assert len({off, on, windows_only}) == 3
    # The calendar queue is output-invariant, so it shares entries with
    # the all-off baseline... but a calendar-only config still has
    # any_enabled=True with an all-zero token, distinct from off.
    assert calendar_only != on
