"""Integration tests for ``repro explain`` (causal attribution end-to-end).

These run real simulations at a small scale (gpus=4, scale=0.125, L2) and
check the acceptance properties of the explain layer:

* attribution sums exactly to the makespan for CAIS and two baselines,
* same-seed invocations produce byte-identical reports,
* switch-merge time appears on the TP-NVLS critical path and is strictly
  reduced under CAIS,
* runs without a recorder installed carry no causal state.
"""

import math

import pytest

from repro import obs
from repro.common.config import dgx_h100_config
from repro.experiments.explain import explain_runs, format_explain_report
from repro.experiments.runner import Scale, sublayer_for
from repro.llm.models import by_name
from repro.llm.tiling import TilingConfig
from repro.obs.causality import SWITCH_MERGE
from repro.systems import make_system

MODEL = "LLaMA-7B"
WORKLOAD = "L2"
SYSTEMS = ["CAIS", "TP-NVLS", "SP-NVLS"]
GPUS = 4
SEED = 2026
SCALE = 0.125


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def paths():
    return explain_runs(MODEL, WORKLOAD, SYSTEMS, GPUS, SEED, SCALE)


def test_attribution_sums_exactly_to_makespan(paths):
    for name, path in paths:
        total = math.fsum(path.attribution().values())
        assert total == path.makespan_ns, name
        path.verify()


def test_same_seed_reports_are_byte_identical(paths):
    again = explain_runs(MODEL, WORKLOAD, SYSTEMS, GPUS, SEED, SCALE)
    first = format_explain_report(MODEL, WORKLOAD, GPUS, SEED, SCALE, paths)
    second = format_explain_report(MODEL, WORKLOAD, GPUS, SEED, SCALE, again)
    assert first == second
    assert first.startswith("# repro explain")


def test_cais_reduces_switch_merge_on_critical_path(paths):
    merge = {name: path.attribution()[SWITCH_MERGE] for name, path in paths}
    # The NVLS baselines pay in-switch reduction latency on the critical
    # path; CAIS's compute-aware scheduling keeps (most of) it off.
    assert merge["TP-NVLS"] > 0
    assert merge["SP-NVLS"] > 0
    assert merge["CAIS"] < merge["TP-NVLS"]
    assert merge["CAIS"] < merge["SP-NVLS"]


def _one_run(with_recorder: bool):
    config = dgx_h100_config(num_gpus=GPUS, seed=SEED)
    scale = Scale(tokens_fraction=SCALE,
                  tiling=TilingConfig(chunk_bytes=32768,
                                      red_chunk_bytes=8192))
    model = scale.apply(by_name(MODEL))
    graphs = [sublayer_for(model, GPUS, "CAIS", WORKLOAD)]
    if with_recorder:
        obs.install(causality=obs.CausalityRecorder())
    try:
        return make_system("CAIS", config, tiling=scale.tiling).run(graphs)
    finally:
        obs.reset()


def test_recorder_is_simulation_invariant():
    """Recording causality must not perturb the simulation itself."""
    plain = _one_run(with_recorder=False)
    traced = _one_run(with_recorder=True)
    assert traced.makespan_ns == plain.makespan_ns


def test_run_without_recorder_has_no_explain_surface():
    result = _one_run(with_recorder=False)
    assert result.critical_path is None
    assert not [k for k in result.details if k.startswith("explain.")]


def test_run_with_recorder_folds_attribution_into_details(paths):
    result = _one_run(with_recorder=True)
    assert result.critical_path is not None
    keys = [k for k in result.details if k.startswith("explain.")]
    assert keys
    total = math.fsum(result.details[k] for k in keys)
    assert total == result.makespan_ns
