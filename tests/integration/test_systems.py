"""Integration tests: every system end-to-end on a scaled sub-layer.

These check the paper's *shape*: who wins, rough ordering, and that the
CAIS ablation variants line up (Base < Partial < full).  Absolute numbers
use a heavily scaled workload so the whole module runs in well under a
minute; the benchmarks regenerate the full-size figures.
"""

import pytest

from repro.common.config import dgx_h100_config
from repro.llm.models import LLAMA_7B
from repro.llm.tiling import TilingConfig
from repro.llm.tp import sublayer_graph, sp_forward_layer
from repro.systems import SYSTEM_CLASSES, make_system

SCALE = 0.125
TILING = TilingConfig(chunk_bytes=32768, red_chunk_bytes=8192)

BASIC_STYLE = {"TP-NVLS", "CoCoNet", "FuseLib", "CoCoNet-NVLS",
               "FuseLib-NVLS", "LADM"}


@pytest.fixture(scope="module")
def results():
    model = LLAMA_7B.scaled(SCALE)
    cfg = dgx_h100_config()
    sp = sublayer_graph(model, 8, "L1")
    basic = sublayer_graph(model, 8, "L1", style="basic")
    out = {}
    for name in SYSTEM_CLASSES:
        graph = basic if name in BASIC_STYLE else sp
        out[name] = make_system(name, cfg, tiling=TILING).run([graph])
    return out


def test_all_systems_complete(results):
    for name, res in results.items():
        assert res.makespan_ns > 0, name
        assert res.tbs_completed > 0, name


def test_cais_beats_every_baseline(results):
    cais = results["CAIS"].makespan_ns
    for name in ("TP-NVLS", "SP-NVLS", "CoCoNet", "FuseLib", "T3",
                 "CoCoNet-NVLS", "FuseLib-NVLS", "LADM"):
        assert results[name].makespan_ns > cais, name


def test_speedup_over_tp_nvls_in_paper_range(results):
    """Paper Fig. 12: 1.39x geomean over TP-NVLS on sub-layers."""
    ratio = results["TP-NVLS"].makespan_ns / results["CAIS"].makespan_ns
    assert 1.1 < ratio < 2.2


def test_overlap_without_nvls_loses_to_nvls_barriers(results):
    """Paper: CoCoNet/FuseLib (ring transport) fall behind NVLS systems."""
    assert results["CoCoNet"].makespan_ns > results["TP-NVLS"].makespan_ns
    assert results["FuseLib"].makespan_ns > results["TP-NVLS"].makespan_ns


def test_nvls_variants_improve_their_bases(results):
    assert (results["CoCoNet-NVLS"].makespan_ns <
            results["CoCoNet"].makespan_ns)
    assert (results["FuseLib-NVLS"].makespan_ns <
            results["FuseLib"].makespan_ns)
    # T3 vs T3-NVLS nearly tie at this tiny scale; the gap opens at the
    # default experiment scale (paper: 1.64 vs 1.47 behind CAIS).
    assert (results["T3-NVLS"].makespan_ns <
            results["T3"].makespan_ns * 1.02)


def test_ladm_is_the_extreme_loser(results):
    """Paper: 7.6-7.9x behind CAIS — far behind everything else."""
    ladm = results["LADM"].makespan_ns
    for name, res in results.items():
        if name != "LADM":
            assert ladm > res.makespan_ns, name
    assert ladm / results["CAIS"].makespan_ns > 2.5


def test_cais_ablation_ordering(results):
    """Base (ISA only) < Partial (+optimizer) < full (+traffic control)."""
    assert (results["CAIS-Base"].makespan_ns >
            results["CAIS-Partial"].makespan_ns)
    assert (results["CAIS-Partial"].makespan_ns >=
            results["CAIS"].makespan_ns * 0.98)
    assert results["CAIS-Base"].makespan_ns > results["CAIS"].makespan_ns


def test_coordination_helps(results):
    assert (results["CAIS-w/o-Coord"].makespan_ns >
            results["CAIS"].makespan_ns * 0.99)


def test_bandwidth_utilization_sane(results):
    """All utilizations are valid fractions; the Fig. 15 Base < Partial <
    CAIS ordering is asserted at larger scale in the Fig. 15 benchmark
    (at this tiny scale the eviction-traffic noise swamps the ~2% gaps)."""
    for name, res in results.items():
        util = res.average_bandwidth_utilization()
        assert 0.0 < util <= 1.0, name
    # CAIS keeps its links at least as busy per unit time as Base, within
    # noise.
    assert (results["CAIS"].average_bandwidth_utilization() >
            0.9 * results["CAIS-Base"].average_bandwidth_utilization())


def test_gpu_utilization_drops_under_nvls_barriers(results):
    """Paper Section II-C: 'GPU utilization can drop below 60%, even when
    NVLS is enabled' — and CAIS's overlap recovers a good part of it."""
    assert results["SP-NVLS"].gpu_utilization < 0.6
    assert results["TP-NVLS"].gpu_utilization < 0.6
    assert (results["CAIS"].gpu_utilization >
            results["SP-NVLS"].gpu_utilization)


def test_timeline_shows_fused_overlap(results):
    """Under CAIS the producer GEMM, LN and consumer GEMM run concurrently
    (Fig. 9d); under the barrier baseline they cannot."""
    cais = results["CAIS"].timeline
    assert cais.overlap_ns("gemm1", "gemm2") > 0
    barrier = results["SP-NVLS"].timeline
    assert barrier.overlap_ns("gemm1", "gemm2") == 0.0


def test_merge_stats_present_for_cais_only(results):
    assert results["CAIS"].merge_stats is not None
    assert results["CAIS"].merge_stats.sessions_completed > 0
    assert results["TP-NVLS"].merge_stats is None


def test_runs_are_reproducible():
    model = LLAMA_7B.scaled(SCALE)
    cfg = dgx_h100_config()
    graph = sublayer_graph(model, 8, "L1")
    a = make_system("CAIS", cfg, tiling=TILING).run([graph])
    b = make_system("CAIS", cfg, tiling=TILING).run([graph])
    assert a.makespan_ns == b.makespan_ns
    assert a.events == b.events


def test_seed_changes_makespan_slightly():
    model = LLAMA_7B.scaled(SCALE)
    graph = sublayer_graph(model, 8, "L1")
    a = make_system("CAIS", dgx_h100_config(seed=1), tiling=TILING).run(
        [graph])
    b = make_system("CAIS", dgx_h100_config(seed=2), tiling=TILING).run(
        [graph])
    assert a.makespan_ns != b.makespan_ns
    assert abs(a.makespan_ns - b.makespan_ns) / a.makespan_ns < 0.15


def test_full_layer_graph_runs_under_cais():
    model = LLAMA_7B.scaled(SCALE)
    cfg = dgx_h100_config()
    graph = sp_forward_layer(model, 8)
    res = make_system("CAIS", cfg, tiling=TILING).run([graph])
    assert res.makespan_ns > 0
    assert res.tbs_completed > 1000
