"""Property-based tests on the in-switch protocols (merge unit, ring)."""

from hypothesis import given, settings, strategies as st

from repro.common.config import dgx_h100_config
from repro.common.events import Simulator
from repro.cais.merge_unit import MergeUnit
from repro.collectives.ring import RingCollective
from repro.gpu.executor import Executor
from repro.interconnect.message import Address, Message, Op, gpu_node
from repro.interconnect.network import Network
from repro.metrics.merge_stats import MergeStats
from repro.nvls.engine import NvlsEngine


def _fabric(num_gpus, capacity, timeout):
    sim = Simulator()
    cfg = dgx_h100_config(num_gpus=num_gpus)
    cfg = cfg.__class__(**{**cfg.__dict__, "num_gpus": num_gpus,
                           "num_switches": 2})
    net = Network(sim, cfg)
    stats = MergeStats()
    units = []
    for sw in net.switches:
        unit = MergeUnit(stats, num_gpus, capacity_entries=capacity,
                         timeout_ns=timeout)
        sw.attach_engine(unit)
        units.append(unit)
    return sim, net, stats, units


@given(
    num_addrs=st.integers(min_value=1, max_value=12),
    capacity=st.sampled_from([1, 4, 8, 64, None]),
    chunk=st.sampled_from([128, 1024, 8192]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=30, deadline=None)
def test_reduction_contributions_are_conserved(num_addrs, capacity, chunk,
                                               seed):
    """No contribution is ever lost or duplicated: for every address the
    home GPU receives exactly the contributions that were sent, whatever
    the table capacity, eviction pressure, chunk size or arrival order."""
    import numpy as np
    rng = np.random.default_rng(seed)
    num_gpus = 4
    sim, net, stats, units = _fabric(num_gpus, capacity, timeout=30_000.0)
    received = {}

    def recv(msg, g):
        if msg.op is Op.STORE and msg.meta.get("reduced"):
            key = msg.address
            received[key] = received.get(key, 0) + msg.meta["contributions"]

    for g in range(num_gpus):
        net.register_gpu(g, lambda m, g=g: recv(m, g))

    addrs = [Address(int(rng.integers(0, num_gpus)), i * 65536)
             for i in range(num_addrs)]
    sent = 0
    for addr in addrs:
        for g in range(num_gpus):
            if g == addr.home_gpu:
                continue
            t = float(rng.uniform(0, 100_000))
            msg = Message(Op.RED_CAIS, gpu_node(g),
                          gpu_node(addr.home_gpu), payload_bytes=chunk,
                          address=addr, meta={"expected": num_gpus - 1})
            sim.schedule(t, net.send_from_gpu, g, msg)
            sent += 1
    sim.run()
    assert sum(received.get(a, 0) for a in addrs) == sent
    for a in addrs:
        assert received.get(a, 0) == num_gpus - 1
    # Tables drain completely and occupancy accounting returns to zero.
    for unit in units:
        assert unit.open_sessions() == 0
    trace = stats.occupancy_trace()
    if trace:                       # empty when everything bypassed
        assert trace[-1][1] == 0


@given(
    shards_value=st.lists(st.floats(min_value=-4, max_value=4,
                                    allow_nan=False),
                          min_size=4, max_size=4),
    nbytes_kb=st.sampled_from([64, 256, 1024]),
    chunk_kb=st.sampled_from([16, 64, 256]),
)
@settings(max_examples=25, deadline=None)
def test_ring_allreduce_is_a_true_sum(shards_value, nbytes_kb, chunk_kb):
    """Functional payloads through the full ring AllReduce: every GPU's
    every chunk ends up holding the sum of all GPUs' contributions."""
    sim = Simulator()
    cfg = dgx_h100_config(num_gpus=4)
    net = Network(sim, cfg)
    ex = Executor(sim, cfg, net, jitter_enabled=False)
    ring = RingCollective(net, ex.gpus, chunk_bytes=chunk_kb * 1024)
    # Capture the payloads of the AllGather hops (the circulated result).
    payloads = []
    original = ring._on_chunk

    def spy(gpu, msg):
        if msg.meta["phase"] == "ag":
            payloads.append(msg.payload)
        original(gpu, msg)

    ring._on_chunk = spy
    done = []
    ring.all_reduce(
        nbytes_kb * 1024,
        on_complete=lambda: done.append(True),
        local_values=lambda gpu, shard, chunk: shards_value[gpu])
    sim.run()
    assert done == [True]
    expected = sum(shards_value)
    assert payloads
    for value in payloads:
        assert abs(value - expected) < 1e-9


@given(seed=st.integers(min_value=0, max_value=2**16),
       chunk_kb=st.sampled_from([32, 128]))
@settings(max_examples=15, deadline=None)
def test_nvls_pull_reduce_sums_match(seed, chunk_kb):
    """multimem.ld_reduce returns exactly the sum of member contributions,
    for random member values, across planes."""
    import numpy as np
    rng = np.random.default_rng(seed)
    num_gpus = 4
    sim = Simulator()
    cfg = dgx_h100_config(num_gpus=num_gpus)
    net = Network(sim, cfg)
    for sw in net.switches:
        sw.attach_engine(NvlsEngine())
    values = {g: float(rng.normal()) for g in range(num_gpus)}
    responses = []

    def make_receiver(g):
        def receive(msg):
            if msg.op is Op.MULTIMEM_LD_REDUCE_GATHER:
                resp = Message(
                    op=Op.MULTIMEM_LD_REDUCE_RESP, src=gpu_node(g),
                    dst=gpu_node(msg.meta["requester"]),
                    payload_bytes=msg.meta["chunk_bytes"],
                    address=msg.address, payload=values[g],
                    meta={"nvls_pull": True,
                          "requester": msg.meta["requester"],
                          "chunk_bytes": msg.meta["chunk_bytes"]})
                net.send_from_gpu(g, resp)
            elif msg.op is Op.MULTIMEM_LD_REDUCE_RESP:
                responses.append(msg.payload)
        return receive

    for g in range(num_gpus):
        net.register_gpu(g, make_receiver(g))
    members = [1, 2, 3]
    req = Message(Op.MULTIMEM_LD_REDUCE_REQ, gpu_node(0), gpu_node(0),
                  address=Address(0, 0),
                  meta={"members": members, "chunk_bytes": chunk_kb * 1024})
    net.send_from_gpu(0, req)
    sim.run()
    assert len(responses) == 1
    assert abs(responses[0] - sum(values[m] for m in members)) < 1e-9
