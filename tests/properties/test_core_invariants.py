"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings, strategies as st

from repro.common.events import Simulator
from repro.interconnect.message import Address
from repro.interconnect.routing import plane_for_address
from repro.llm.tiling import ActivationLayout
from repro.metrics.bandwidth import BandwidthTracker
from repro.cais.compiler import (
    BinOp, BlockIdx, Const, Env, GpuId, Param)


# ---------------------------------------------------------------------------
# Event engine
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1000,
                                    allow_nan=False),
                          st.booleans()), min_size=1, max_size=40))
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    events = []
    for delay, cancel in entries:
        ev = sim.schedule(delay, fired.append, delay)
        events.append((ev, cancel))
    for ev, cancel in events:
        if cancel:
            ev.cancel()
    sim.run()
    expected = sorted(d for (d, c) in entries if not c)
    assert sorted(fired) == expected


# ---------------------------------------------------------------------------
# Bandwidth tracker
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.floats(min_value=0, max_value=50,
                                    allow_nan=False)),
                min_size=1, max_size=40))
def test_tracker_busy_time_bounded_by_span(jumps):
    t = BandwidthTracker()
    now = 0.0
    for gap, width in jumps:
        start = now + gap
        t.record(start, start + width, int(width) + 1)
        now = start
    span_start = t.first_activity()
    span_end = t.last_activity()
    busy = t.busy_time()
    assert busy <= span_end - span_start + 1e-6
    if span_end > span_start:
        assert 0.0 <= t.utilization(span_start, span_end) <= 1.0 + 1e-9
    # Merged intervals are disjoint and ordered.
    intervals = t.intervals
    for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
        assert a1 < b0
        assert a0 <= a1


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=1 << 48),
       st.integers(min_value=1, max_value=8))
def test_routing_deterministic_and_in_range(home, offset, planes):
    addr = Address(home, offset)
    plane = plane_for_address(addr, planes)
    assert 0 <= plane < planes
    assert plane == plane_for_address(Address(home, offset), planes)


@given(st.integers(min_value=0, max_value=7),
       st.sampled_from([8192, 16384, 32768, 65536, 131072, 1 << 20]),
       st.integers(min_value=64, max_value=256))
def test_routing_balances_power_of_two_strides(home, stride, count):
    """Chunk streams with power-of-two strides spread across planes."""
    planes = 4
    counts = [0] * planes
    for i in range(count):
        counts[plane_for_address(Address(home, i * stride), planes)] += 1
    assert min(counts) >= count / planes * 0.5
    assert max(counts) <= count / planes * 1.6


# ---------------------------------------------------------------------------
# Activation layout
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=32).flatmap(
    lambda tp: st.tuples(
        st.just(tp),
        st.integers(min_value=tp, max_value=tp * 40),   # blocks
        st.sampled_from([32, 64, 128]))))
def test_layout_partition_is_exact(params):
    tp, blocks, row_block = params
    layout = ActivationLayout(tensor_id=1, rows=blocks * row_block,
                              row_bytes=64, tp=tp, row_block=row_block)
    # shard_start/shard_blocks tile the block range exactly...
    total = 0
    cursor = 0
    for g in range(tp):
        assert layout.shard_start(g) == cursor
        cursor += layout.shard_blocks(g)
        total += layout.shard_blocks(g)
    assert total == layout.num_blocks
    # ...and home_of_block is the inverse mapping.
    for mb in range(layout.num_blocks):
        home = layout.home_of_block(mb)
        assert layout.shard_start(home) <= mb < \
            layout.shard_start(home) + layout.shard_blocks(home)
    # Shards are balanced to within one block.
    sizes = [layout.shard_blocks(g) for g in range(tp)]
    assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# Compiler address expressions
# ---------------------------------------------------------------------------

def exprs(depth=3):
    leaf = st.one_of(
        st.integers(min_value=0, max_value=64).map(Const),
        st.integers(min_value=0, max_value=1).map(BlockIdx),
        st.just(GpuId()),
    )
    return st.recursive(
        leaf,
        lambda children: st.tuples(
            st.sampled_from(["+", "*"]), children, children
        ).map(lambda t: BinOp(*t)),
        max_leaves=8)


@given(exprs(), st.tuples(st.integers(0, 7), st.integers(0, 7)),
       st.integers(0, 7), st.integers(0, 7))
@settings(max_examples=80)
def test_gpu_invariant_expressions_evaluate_identically(expr, bidx, g1, g2):
    """The compiler's mergeability rule: an expression that does not
    reference gpuId evaluates identically on every GPU."""
    e1 = expr.evaluate(Env(block_idx=bidx, gpu_id=g1))
    e2 = expr.evaluate(Env(block_idx=bidx, gpu_id=g2))
    if not expr.references_gpu_id():
        assert e1 == e2


@given(exprs(), st.tuples(st.integers(0, 7), st.integers(0, 7)),
       st.tuples(st.integers(0, 7), st.integers(0, 7)))
@settings(max_examples=80)
def test_referenced_dims_cover_variation(expr, b1, b2):
    """Blocks agreeing on all referenced dims evaluate identically
    (they belong to the same TB group)."""
    dims = expr.referenced_block_dims()
    agree = all(b1[d] == b2[d] for d in dims)
    if agree and not expr.references_gpu_id():
        assert (expr.evaluate(Env(block_idx=b1)) ==
                expr.evaluate(Env(block_idx=b2)))
