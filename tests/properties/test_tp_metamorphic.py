"""Metamorphic properties of the TP layer-graph builders.

Cross-checks :mod:`repro.llm.tp` against relations that must hold by
construction, without trusting the builders' own arithmetic:

* doubling the batch doubles total GEMM FLOPs and collective bytes;
* the TP degree partitions the attention heads exactly (per-GPU softmax
  work times ``tp`` recovers the unsharded head count);
* graph FLOP totals equal the independent closed forms in
  :mod:`repro.llm.transformer` (``analytic_layer_flops``), forward and
  backward, both TP styles.

All quantities are integer-valued floats well under 2**53, so the
equalities are exact — no tolerances.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.llm.graph import OpKind
from repro.llm.models import ModelConfig
from repro.llm.tp import (
    basic_backward_layer,
    basic_forward_layer,
    sp_backward_layer,
    sp_forward_layer,
)
from repro.llm.transformer import (
    analytic_gemm_flops,
    analytic_layer_flops,
)

BUILDERS = {
    ("sp", "fwd"): sp_forward_layer,
    ("sp", "bwd"): sp_backward_layer,
    ("basic", "fwd"): basic_forward_layer,
    ("basic", "bwd"): basic_backward_layer,
}


@st.composite
def models_and_tp(draw):
    """A random model whose dimensions all divide the drawn TP degree."""
    tp = draw(st.sampled_from([2, 4, 8]))
    heads = tp * draw(st.integers(1, 4))
    hidden = 8 * heads * draw(st.integers(1, 4))
    ffn = hidden * draw(st.integers(1, 4))
    seq = 8 * tp * draw(st.integers(1, 8))
    batch = draw(st.integers(1, 4))
    return ModelConfig(name="prop", hidden=hidden, ffn_hidden=ffn,
                       heads=heads, seq_len=seq, batch=batch,
                       layers=2), tp


def gemm_flops(graph) -> float:
    return sum(op.gemm.flops() for op in graph.ops()
               if op.kind is OpKind.GEMM)


@settings(max_examples=30, deadline=None)
@given(params=models_and_tp(),
       style=st.sampled_from(["sp", "basic"]),
       phase=st.sampled_from(["fwd", "bwd"]))
def test_doubling_batch_doubles_flops_and_bytes(params, style, phase):
    model, tp = params
    build = BUILDERS[(style, phase)]
    single = build(model, tp)
    double = build(replace(model, batch=2 * model.batch), tp)
    assert gemm_flops(double) == 2 * gemm_flops(single)
    assert double.total_flops() == 2 * single.total_flops()
    assert double.total_comm_bytes() == 2 * single.total_comm_bytes()


@settings(max_examples=30, deadline=None)
@given(params=models_and_tp())
def test_tp_degree_partitions_heads_exactly(params):
    model, tp = params
    assert model.heads % tp == 0
    graph = sp_forward_layer(model, tp)
    softmax = graph["softmax"]
    # Per-GPU softmax work times the TP degree recovers the unsharded
    # head count — heads are partitioned with no remainder and no overlap.
    assert softmax.elements * tp == \
        model.batch * model.heads * model.seq_len ** 2
    # Attention GEMMs carry the same 1/tp head sharding in their K/N dims.
    assert graph["attn_score"].gemm.k * tp == model.hidden
    assert graph["attn_ctx"].gemm.n * tp == model.hidden


@settings(max_examples=30, deadline=None)
@given(params=models_and_tp(),
       style=st.sampled_from(["sp", "basic"]),
       phase=st.sampled_from(["fwd", "bwd"]))
def test_graph_flops_match_analytic_counts(params, style, phase):
    model, tp = params
    graph = BUILDERS[(style, phase)](model, tp)
    assert gemm_flops(graph) == analytic_gemm_flops(model, tp, phase)
    assert graph.total_flops() == \
        analytic_layer_flops(model, tp, style, phase)


@settings(max_examples=20, deadline=None)
@given(params=models_and_tp())
def test_backward_gemm_work_is_twice_forward(params):
    """dgrad + wgrad: every forward GEMM costs exactly twice in backward."""
    model, tp = params
    for style in ("sp", "basic"):
        fwd = gemm_flops(BUILDERS[(style, "fwd")](model, tp))
        bwd = gemm_flops(BUILDERS[(style, "bwd")](model, tp))
        assert bwd == 2 * fwd
