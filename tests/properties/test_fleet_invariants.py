"""Property-based invariants of the fleet serving layer (PR 10).

Four families, mirroring tests/properties/test_serving_invariants.py one
level up the stack:

* request conservation — every offered request appears exactly once
  fleet-wide (finished or shed, stages combined), with its sampled
  prompt/output lengths intact;
* resource sanity — no replica's simulated KV peak ever overshoots the
  per-replica budget, and per-request timestamps are causally ordered;
* determinism — the same fleet run twice is byte-identical, across five
  seeds and every routing policy;
* routing-policy sanity — round-robin spreads the stream within one
  request of evenly, and prefix-affinity keeps equal-prefix requests on
  a single replica.

Routing-sanity checks run on pure plans (no simulation); the rest drive
real replica simulations through :func:`run_fleet`, so the tiny model
and short horizons here are load-bearing for suite runtime.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import dgx_h100_config
from repro.experiments.fig22_fleet import run_fleet
from repro.experiments.runner import Scale
from repro.llm.fleet import (
    FLEET_POLICIES,
    FleetSpec,
    plan_fleet,
)
from repro.llm.models import ModelConfig
from repro.llm.serving import (
    ServingSpec,
    generate_requests,
    kv_bytes_per_token,
)
from repro.llm.tiling import TilingConfig

TINY = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                   seq_len=64, batch=4, layers=4)
TILING = TilingConfig(tile=32, chunk_bytes=32768, red_chunk_bytes=8192)
SCALE = Scale(tokens_fraction=1.0, tiling=TILING)
KVPT = kv_bytes_per_token(TINY)


def tiny_spec(seed, **overrides) -> ServingSpec:
    base = dict(model="tiny", seed=seed, arrival_rate_rps=100_000.0,
                max_arrival_rate_rps=200_000.0, horizon_ms=0.05,
                prompt_min=8, prompt_max=24, output_min=1, output_max=3,
                max_batch_requests=4)
    base.update(overrides)
    return ServingSpec(**base)


def tiny_fleet(seed, **overrides) -> FleetSpec:
    serving = overrides.pop("serving", None) or tiny_spec(seed)
    base = dict(serving=serving, replicas=2)
    base.update(overrides)
    return FleetSpec(**base)


def run_tiny_fleet(fleet, system="CAIS", config=None):
    return run_fleet(
        system, fleet,
        config=config or dgx_h100_config(num_gpus=4, seed=1),
        scale=SCALE, model=TINY, kwargs=(("jitter", False),))


def canonical(result):
    """Byte-comparable projection of a FleetResult."""
    return (
        tuple(dataclasses.astuple(s) for s in result.stats),
        tuple(dataclasses.astuple(s) for s in result.shed),
        tuple(tuple(sorted(row.items())) for row in result.per_replica),
        result.makespan_ns,
        result.handoff_bytes,
        result.handoff_ns_total,
        tuple(sorted(result.details().items())),
    )


# ---------------------------------------------------------------------------
# Conservation + resource sanity (simulated sweep)
# ---------------------------------------------------------------------------

@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       replicas=st.integers(1, 3),
       policy=st.sampled_from(FLEET_POLICIES),
       budget_slots=st.integers(2, 4),
       system=st.sampled_from(["CAIS", "SP-NVLS"]))
def test_fleet_sweep_invariants(seed, replicas, policy, budget_slots,
                                system):
    budget = budget_slots * (24 + 3) * KVPT
    fleet = tiny_fleet(seed, replicas=replicas, policy=policy,
                       serving=tiny_spec(seed, kv_budget_bytes=budget))
    offered = {r.rid: r for r in generate_requests(fleet.serving)}
    result = run_tiny_fleet(fleet)

    # Conservation: exactly the offered rids, each once, lengths intact.
    # (aggregate_fleet raises on violations; re-check from the outside.)
    seen = [s.rid for s in result.stats] + [s.rid for s in result.shed]
    assert sorted(seen) == sorted(offered)
    assert result.offered == len(offered)
    for s in result.stats:
        orig = offered[s.rid]
        assert s.prompt_len == orig.prompt_len
        assert s.output_len == orig.output_len
        assert s.arrival_ns == orig.arrival_ns
        # Causal ordering of the per-request timeline.
        assert orig.arrival_ns <= s.first_token_ns <= s.finish_ns
        assert 0 <= s.replica < replicas

    # Per-replica KV budgets are never overshot: the batcher admits
    # against the budget inside each replica, and the fleet rows carry
    # the simulated peak out for exactly this check.
    for row in result.per_replica:
        assert row["kv_peak_bytes"] <= budget
    # The fleet row set covers every slot of the fleet exactly once.
    assert len(result.per_replica) == replicas
    assert sorted(int(row["index"]) for row in result.per_replica) == \
        list(range(replicas))
    assert sum(row["requests"] + row["shed"]
               for row in result.per_replica) == len(offered)
    assert result.makespan_ns == max(
        row["makespan_ns"] for row in result.per_replica)


# ---------------------------------------------------------------------------
# Determinism: same fleet, same bytes — five seeds, every policy
# ---------------------------------------------------------------------------

def test_fleet_is_byte_identical_across_reruns():
    policies = list(FLEET_POLICIES)
    for i, seed in enumerate((11, 222, 3333, 44444, 55555)):
        fleet = tiny_fleet(seed, replicas=2,
                           policy=policies[i % len(policies)])
        first = canonical(run_tiny_fleet(fleet))
        again = canonical(run_tiny_fleet(fleet))
        assert first == again, f"seed {seed} diverged across reruns"


def test_disaggregated_fleet_is_byte_identical_across_reruns():
    fleet = tiny_fleet(77, replicas=3, prefill_replicas=1)
    first = canonical(run_tiny_fleet(fleet))
    again = canonical(run_tiny_fleet(fleet))
    assert first == again
    assert first[4] > 0          # handoff bytes actually charged


# ---------------------------------------------------------------------------
# Routing-policy sanity (pure plans, no simulation)
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       replicas=st.integers(1, 5),
       rate=st.floats(50_000.0, 200_000.0))
def test_round_robin_spread_is_within_one_request(seed, replicas, rate):
    fleet = tiny_fleet(seed, replicas=replicas,
                       policy="round-robin",
                       serving=tiny_spec(seed, arrival_rate_rps=rate))
    plan = plan_fleet(fleet, model=TINY)
    counts = [0] * replicas
    for idx in plan.assignment.values():
        counts[idx] += 1
    if plan.requests:
        assert max(counts) - min(counts) <= 1
    assert sum(counts) == len(plan.requests)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       replicas=st.integers(1, 5),
       buckets=st.integers(1, 32))
def test_prefix_affinity_pins_equal_prefixes_together(seed, replicas,
                                                      buckets):
    fleet = tiny_fleet(seed, replicas=replicas, policy="prefix-affinity",
                       prefix_buckets=buckets)
    plan = plan_fleet(fleet, model=TINY)
    # All requests sharing a prefix bucket landed on one replica, and the
    # chosen replica is a function of the bucket alone.
    by_bucket = {}
    for rid, idx in plan.assignment.items():
        bucket = plan.buckets[rid]
        assert by_bucket.setdefault(bucket, idx) == idx


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 16), replicas=st.integers(2, 4))
def test_least_kv_routes_every_replica_some_load(seed, replicas):
    # With a decaying estimate and more requests than replicas, least-KV
    # must not starve any replica of the tiny uniform stream.
    fleet = tiny_fleet(seed, replicas=replicas, policy="least-kv")
    plan = plan_fleet(fleet, model=TINY)
    if len(plan.requests) >= 2 * replicas:
        assert len(set(plan.assignment.values())) == replicas


def test_plans_are_deterministic_per_seed():
    for policy in FLEET_POLICIES:
        fleet = tiny_fleet(99, replicas=3, policy=policy)
        a = plan_fleet(fleet, model=TINY)
        b = plan_fleet(fleet, model=TINY)
        assert a.assignment == b.assignment
        assert a.buckets == b.buckets
        assert [rs.requests for rs in a.stage1] == \
            [rs.requests for rs in b.stage1]
