"""Metamorphic properties of the fleet layer (PR 10).

Three relations pin the fleet machinery to things we already trust:

* **Anchor** — a 1-replica fleet with routing disabled is byte-identical
  to the plain single-session serving path (`simulate_serving`): same
  per-request outcomes, same makespan.  The whole replica fan-out
  (request encoding → SimTask.replica → worker → RunSummary.request_stats
  → aggregation) must be an exact no-op wrapper in this configuration.
* **Scaling** — doubling the replica count under a *fixed* offered burst
  never decreases SLO attainment at any fixed TTFT threshold: round-robin
  assignments at 2R nest inside those at R, so each replica serves a
  subset wave of what it served before.
* **Degradation** — nested fault intensities (the fault set at a lower
  intensity is structurally a subset of the set at a higher one, see
  FaultSpec) degrade fleet throughput monotonically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import dgx_h100_config
from repro.experiments.fig19_resilience import fault_spec_for
from repro.experiments.fig22_fleet import run_fleet
from repro.experiments.runner import Scale, style_for
from repro.llm.fleet import FleetSpec
from repro.llm.models import ModelConfig
from repro.llm.serving import ServingSpec, simulate_serving
from repro.llm.tiling import TilingConfig
from repro.systems import make_system

TINY = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                   seq_len=64, batch=4, layers=4)
TILING = TilingConfig(tile=32, chunk_bytes=32768, red_chunk_bytes=8192)
SCALE = Scale(tokens_fraction=1.0, tiling=TILING)


def tiny_spec(seed, **overrides) -> ServingSpec:
    base = dict(model="tiny", seed=seed, arrival_rate_rps=100_000.0,
                max_arrival_rate_rps=200_000.0, horizon_ms=0.05,
                prompt_min=8, prompt_max=24, output_min=1, output_max=3,
                max_batch_requests=4)
    base.update(overrides)
    return ServingSpec(**base)


def burst_spec(seed) -> ServingSpec:
    # Arrival window (2 us) shorter than any iteration: each replica
    # serves its assignment as one or two waves, so a smaller assignment
    # can only move requests into earlier waves.
    return tiny_spec(seed, arrival_rate_rps=2_000_000.0,
                     max_arrival_rate_rps=2_000_000.0, horizon_ms=0.002,
                     max_batch_requests=32, kv_budget_bytes=None)


def run_tiny_fleet(fleet, system="CAIS", config=None):
    return run_fleet(
        system, fleet,
        config=config or dgx_h100_config(num_gpus=4, seed=1),
        scale=SCALE, model=TINY, kwargs=(("jitter", False),))


def rows(stats):
    """Comparable per-request outcome rows, fleet- and session-shaped."""
    return sorted(
        (s.rid, s.arrival_ns, s.prompt_len, s.output_len,
         s.first_token_ns, s.finish_ns, s.evictions, s.aborts, s.shed)
        for s in stats)


# ---------------------------------------------------------------------------
# Anchor: 1-replica fleet == single-session serving, byte for byte
# ---------------------------------------------------------------------------

@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       system=st.sampled_from(["CAIS", "SP-NVLS", "TP-NVLS"]))
def test_one_replica_fleet_is_the_serving_session(seed, system):
    spec = tiny_spec(seed)
    fleet = FleetSpec(serving=spec, replicas=1, routing=False)
    result = run_tiny_fleet(fleet, system=system)

    config = dgx_h100_config(num_gpus=4, seed=1)
    instance = make_system(system, config, tiling=TILING,
                           chunk_bytes=SCALE.coll_chunk_bytes,
                           jitter=False)
    session = simulate_serving(instance, spec, model=TINY,
                               style=style_for(system))

    assert rows(result.stats) == rows(session.stats)
    assert rows(result.shed) == rows(session.shed)
    assert result.makespan_ns == session.run.makespan_ns


def test_one_replica_fleet_matches_session_with_admission():
    # Same anchor with the PR 8 shed controller armed: shed decisions are
    # part of the byte-identity contract, not just happy-path finishes.
    spec = tiny_spec(5, arrival_rate_rps=200_000.0,
                     admission_policy="shed", slo_ttft_ms=0.05)
    fleet = FleetSpec(serving=spec, replicas=1, routing=False)
    result = run_tiny_fleet(fleet)
    instance = make_system("CAIS", dgx_h100_config(num_gpus=4, seed=1),
                           tiling=TILING,
                           chunk_bytes=SCALE.coll_chunk_bytes,
                           jitter=False)
    session = simulate_serving(instance, spec, model=TINY, style="sp")
    assert rows(result.stats) == rows(session.stats)
    assert rows(result.shed) == rows(session.shed)


# ---------------------------------------------------------------------------
# Scaling: more replicas never hurt attainment on a fixed trace
# ---------------------------------------------------------------------------

SLO_THRESHOLDS_NS = (50_000.0, 60_000.0, 70_000.0, 90_000.0)


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 2 ** 16))
def test_doubling_replicas_never_decreases_attainment(seed):
    spec = burst_spec(seed)
    attainment = {}
    for replicas in (1, 2, 4):
        result = run_tiny_fleet(FleetSpec(serving=spec,
                                          replicas=replicas))
        assert not result.shed           # admission off: nothing shed
        attainment[replicas] = [result.slo_attainment(slo)
                                for slo in SLO_THRESHOLDS_NS]
    for i, slo in enumerate(SLO_THRESHOLDS_NS):
        seq = [attainment[r][i] for r in (1, 2, 4)]
        assert seq[0] <= seq[1] <= seq[2], (
            f"attainment at slo={slo:.0f}ns fell while scaling out: "
            f"1->2->4 replicas gave {seq}")


# ---------------------------------------------------------------------------
# Degradation: nested fault intensities, monotone throughput loss
# ---------------------------------------------------------------------------

FAULT_SEEDS = (3, 17, 101, 999, 4242)
INTENSITIES = (0.0, 0.5, 1.0)


def test_fault_intensity_degrades_fleet_throughput_monotonically():
    for seed in FAULT_SEEDS:
        tps, makespans = [], []
        for intensity in INTENSITIES:
            config = dgx_h100_config(num_gpus=4, seed=1).with_faults(
                fault_spec_for(intensity, fault_seed=seed))
            result = run_tiny_fleet(
                FleetSpec(serving=tiny_spec(seed), replicas=2),
                config=config)
            tps.append(result.tokens_per_s)
            makespans.append(result.makespan_ns)
        assert tps[0] >= tps[1] >= tps[2], (
            f"fault seed {seed}: tokens/s {tps} not monotone over "
            f"intensities {INTENSITIES}")
        assert makespans[0] <= makespans[1] <= makespans[2], (
            f"fault seed {seed}: makespan {makespans} not monotone")
        # Faults slow the fleet down; they never break conservation.
        assert tps[2] > 0 and makespans[0] > 0
