"""Property tests over the serving workload's invariants.

Seeded randomized sweeps over arrival rate, length distributions, KV
budget, and TP degree, asserting the scheduler-level guarantees the
serving layer is built around:

* token conservation — every generated request finishes with exactly its
  sampled ``output_len`` tokens emitted, evictions included;
* the KV-cache byte budget is never overshot;
* latency sanity — ``arrival <= first_token <= finish`` and
  ``TTFT <= e2e`` per request;
* determinism — identical seeds give identical per-request stats and
  makespans;
* monotonicity — under burst arrivals (batch composition pinned; see the
  monotonicity section), higher link bandwidth never increases the
  makespan, and a higher arrival rate (thinned from one candidate
  stream, so a strict superset of requests) never decreases it.

Simulations here run a deliberately tiny model with jitter disabled so
each hypothesis example costs tens of milliseconds.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import FaultSpec, dgx_h100_config
from repro.llm.models import ModelConfig
from repro.llm.serving import (
    ServingSpec,
    generate_requests,
    kv_bytes_per_token,
    simulate_serving,
)
from repro.llm.tiling import TilingConfig
from repro.systems import make_system

TINY = ModelConfig(name="tiny", hidden=256, ffn_hidden=512, heads=8,
                   seq_len=64, batch=4, layers=4)
TILING = TilingConfig(tile=32, chunk_bytes=32768, red_chunk_bytes=8192)
KVPT = kv_bytes_per_token(TINY)
STYLES = {"TP-NVLS": "basic", "SP-NVLS": "sp", "CAIS": "sp"}


def tiny_spec(seed: int, **overrides) -> ServingSpec:
    base = dict(model="tiny", seed=seed,
                arrival_rate_rps=100_000.0,
                max_arrival_rate_rps=200_000.0,
                horizon_ms=0.05, prompt_min=8, prompt_max=24,
                output_min=1, output_max=3, max_batch_requests=4)
    base.update(overrides)
    return ServingSpec(**base)


def serve(system_name: str, spec: ServingSpec, tp: int = 4,
          config=None):
    config = config or dgx_h100_config(num_gpus=tp, seed=1)
    system = make_system(system_name, config, tiling=TILING, jitter=False)
    return simulate_serving(system, spec, model=TINY,
                            style=STYLES[system_name])


# ---------------------------------------------------------------------------
# Core invariants under a randomized sweep
# ---------------------------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       rate_fraction=st.floats(0.2, 1.0),
       prompt_max=st.integers(8, 32),
       output_max=st.integers(1, 4),
       budget_slots=st.integers(1, 4),
       tp=st.sampled_from([2, 4]),
       system=st.sampled_from(["TP-NVLS", "CAIS"]))
def test_serving_sweep_invariants(seed, rate_fraction, prompt_max,
                                  output_max, budget_slots, tp, system):
    budget = budget_slots * (prompt_max + output_max) * KVPT
    spec = tiny_spec(seed,
                     arrival_rate_rps=200_000.0 * rate_fraction,
                     prompt_max=prompt_max, output_max=output_max,
                     kv_budget_bytes=budget)
    requests = {r.rid: r for r in generate_requests(spec)}
    result = serve(system, spec, tp=tp)

    # Token conservation: every request finished with exactly its sampled
    # output length, whatever got admitted, batched, or evicted.
    assert len(result.stats) == len(requests)
    assert result.total_output_tokens == sum(
        r.output_len for r in requests.values())
    for s in result.stats:
        r = requests[s.rid]
        assert (s.prompt_len, s.output_len) == (r.prompt_len, r.output_len)
        # Latency sanity per request.
        assert r.arrival_ns <= s.first_token_ns <= s.finish_ns
        assert 0.0 <= s.ttft_ns <= s.e2e_ns
        assert s.tpot_ns >= 0.0
    # The KV budget is a hard cap, not a target.
    assert result.peak_kv_bytes <= budget
    assert result.makespan_ns > 0
    assert result.run.details["serving.tokens"] == \
        result.total_output_tokens


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("system", ["TP-NVLS", "CAIS"])
def test_identical_seeds_are_byte_identical(seed, system):
    spec = tiny_spec(seed)
    a = serve(system, spec)
    b = serve(system, spec)
    assert a.stats == b.stats
    assert a.makespan_ns == b.makespan_ns
    assert a.iterations == b.iterations
    assert a.run.details == b.run.details


def test_different_seeds_differ():
    assert serve("TP-NVLS", tiny_spec(0)).makespan_ns != \
        serve("TP-NVLS", tiny_spec(3)).makespan_ns


# ---------------------------------------------------------------------------
# Monotonicity
#
# Continuous batching quantizes admission to iteration boundaries, and
# the boundaries move with link speed: a faster fabric can finish an
# iteration before a request arrives, serve emptier batches, and pay
# more per-iteration overhead — so makespan is NOT monotone in bandwidth
# or arrival rate for arbitrary arrival patterns (that is a genuine
# property of closed-loop batching, not a simulator bug).  The invariant
# is structural once the batch composition is pinned, which the *burst*
# construction guarantees: the whole arrival window is shorter than one
# kernel-launch overhead, so every request has arrived before the first
# iteration (request 0 alone, identically in both runs) completes, and
# with ample batch slots and KV budget every later iteration holds every
# live request — the same compositions whatever the bandwidth, and
# nested compositions across rates.
# ---------------------------------------------------------------------------

def burst_spec(seed: int, rate_fraction: float = 1.0) -> ServingSpec:
    # horizon (2 us) < kernel_launch_overhead_ns x ops of any iteration.
    return tiny_spec(seed,
                     arrival_rate_rps=2_000_000.0 * rate_fraction,
                     max_arrival_rate_rps=2_000_000.0,
                     horizon_ms=0.002, max_batch_requests=32,
                     kv_budget_bytes=None)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       bw=st.floats(4.0, 16.0),
       factor=st.floats(1.1, 4.0))
def test_higher_bandwidth_never_increases_makespan(seed, bw, factor):
    spec = burst_spec(seed)
    base = dgx_h100_config(num_gpus=4, seed=1)
    slow = replace(base, link=replace(base.link, bandwidth_gbps=bw))
    fast = replace(base, link=replace(base.link,
                                      bandwidth_gbps=bw * factor))
    slow_ns = serve("TP-NVLS", spec, config=slow).makespan_ns
    fast_ns = serve("TP-NVLS", spec, config=fast).makespan_ns
    assert fast_ns <= slow_ns * (1 + 1e-9)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       low=st.floats(0.1, 0.5),
       high=st.floats(0.5, 1.0))
def test_higher_arrival_rate_never_decreases_makespan(seed, low, high):
    sparse_ns = serve("TP-NVLS", burst_spec(seed, low)).makespan_ns
    dense_ns = serve("TP-NVLS", burst_spec(seed, high)).makespan_ns
    assert dense_ns >= sparse_ns * (1 - 1e-9)


# ---------------------------------------------------------------------------
# Faults: retry-budget exhaustion -> abort -> re-prefill conservation
#
# Under a drop storm the retransmitter charges every retry to the live
# iteration's participants; a request over its budget is aborted — KV
# dropped, full re-prefill requeued — instead of dragging the batch's
# tail.  The invariant is that aborts *never* lose tokens: every request
# still finishes with exactly its sampled output length, and the
# re-prefill accounting reflects the replayed work.
# ---------------------------------------------------------------------------

def faulted_serve(system: str, seed: int, budget: int,
                  intensity: float = 1.0):
    spec = tiny_spec(seed, retry_budget=budget)
    # Drop storm: a message-loss rate far past the default 2% makes the
    # retransmitter charge every iteration, so a tight budget aborts.
    config = dgx_h100_config(num_gpus=4, seed=1).with_faults(
        FaultSpec(enabled=True, intensity=intensity, fault_seed=seed,
                  msg_drop_rate=0.3))
    return spec, serve(system, spec, config=config)


@pytest.mark.parametrize("seed", range(5))
def test_retry_budget_aborts_conserve_tokens(seed):
    # CAIS: its merge-fabric messages are the droppable ones, so the drop
    # storm reliably exercises retransmission inside the serving loop.
    # Budget 1: the first settled retry charge already exceeds it.
    spec, result = faulted_serve("CAIS", seed=seed, budget=1)
    requests = {r.rid: r for r in generate_requests(spec)}
    assert result.aborts > 0
    assert result.run.details["serving.aborts"] == result.aborts
    # Conservation: nothing is shed (no admission policy), every request
    # finishes with its full sampled output despite the aborts.
    assert not result.shed
    assert len(result.stats) == len(requests)
    for s in result.stats:
        r = requests[s.rid]
        assert (s.prompt_len, s.output_len) == (r.prompt_len, r.output_len)
        assert r.arrival_ns <= s.first_token_ns <= s.finish_ns
    assert result.total_output_tokens == sum(
        r.output_len for r in requests.values())
    # Each abort replays at least the victim's prompt (plus any emitted
    # tokens), and the per-request abort counts add up to the total.
    aborted = [s for s in result.stats if s.aborts]
    assert sum(s.aborts for s in aborted) == result.aborts
    assert result.reprefill_tokens >= sum(
        s.prompt_len for s in aborted)
    assert result.run.details["serving.reprefill_tokens"] == \
        result.reprefill_tokens


def test_retry_budget_runs_are_deterministic():
    _, a = faulted_serve("CAIS", seed=5, budget=1)
    _, b = faulted_serve("CAIS", seed=5, budget=1)
    assert a.stats == b.stats
    assert a.aborts == b.aborts
    assert a.run.details == b.run.details


def test_larger_budget_never_increases_aborts():
    _, tight = faulted_serve("CAIS", seed=5, budget=1)
    _, loose = faulted_serve("CAIS", seed=5, budget=10 ** 6)
    assert tight.aborts > 0
    assert loose.aborts == 0


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2 ** 20),
       low=st.floats(0.05, 1.0),
       high=st.floats(0.05, 1.0))
def test_thinned_arrivals_are_nested_across_rates(seed, low, high):
    """The structural property behind rate monotonicity: the request set
    at a lower rate is a subset of the set at a higher rate, entry for
    entry (same rid, arrival time, and lengths)."""
    low, high = sorted((low, high))
    max_rate = 200_000.0
    a = generate_requests(tiny_spec(seed,
                                    arrival_rate_rps=max_rate * low))
    b = generate_requests(tiny_spec(seed,
                                    arrival_rate_rps=max_rate * high))
    by_rid = {r.rid: r for r in b}
    for r in a:
        assert by_rid[r.rid] == r
